#include "policy/registry.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace moteur::policy {

namespace {

// ---------------------------------------------------------------------------
// Matchmaking built-ins

/// The historical broker ranking: queue estimate plus whatever stage-in
/// estimate the caller supplied (zero when matchmaking blind), exact-tie
/// break drawn from the broker's tie stream only when more than one CE
/// shares the best rank. This must replay the pre-policy-engine decision
/// sequence bit for bit.
class QueueRankPolicy : public MatchmakingPolicy {
 public:
  explicit QueueRankPolicy(std::string name = kDefaultMatchmaking)
      : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

  std::size_t choose(const std::vector<CeCandidate>& candidates,
                     Rng& tie_rng) override {
    double best_rank = 0.0;
    std::vector<std::size_t> best;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double rank = candidates[i].queue_rank + candidates[i].stage_in_seconds;
      if (best.empty() || rank < best_rank) {
        best_rank = rank;
        best = {i};
      } else if (rank == best_rank) {
        best.push_back(i);
      }
    }
    if (best.size() > 1) {
      const auto pick = static_cast<std::size_t>(
          tie_rng.uniform_int(0, static_cast<std::int64_t>(best.size()) - 1));
      return best[pick];
    }
    return best.front();
  }

 private:
  std::string name_;
};

/// Same combined ranking as queue-rank, but self-activates the stage-in
/// estimator: the data-aware matchmaking previously gated behind
/// GridConfig::data_aware_matchmaking, expressed as a selectable policy.
class DataGravityPolicy : public QueueRankPolicy {
 public:
  DataGravityPolicy() : QueueRankPolicy("data-gravity") {}
  bool wants_stage_in() const override { return true; }
};

/// Lexicographic (stage-in seconds, queue rank): data locality dominates,
/// queue pressure only separates equally-close CEs.
class LocalityFirstPolicy : public MatchmakingPolicy {
 public:
  const std::string& name() const override { return name_; }
  bool wants_stage_in() const override { return true; }

  std::size_t choose(const std::vector<CeCandidate>& candidates,
                     Rng& tie_rng) override {
    std::vector<std::size_t> best;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (best.empty()) {
        best = {i};
        continue;
      }
      const CeCandidate& lead = candidates[best.front()];
      const CeCandidate& c = candidates[i];
      if (c.stage_in_seconds < lead.stage_in_seconds ||
          (c.stage_in_seconds == lead.stage_in_seconds &&
           c.queue_rank < lead.queue_rank)) {
        best = {i};
      } else if (c.stage_in_seconds == lead.stage_in_seconds &&
                 c.queue_rank == lead.queue_rank) {
        best.push_back(i);
      }
    }
    if (best.size() > 1) {
      const auto pick = static_cast<std::size_t>(
          tie_rng.uniform_int(0, static_cast<std::int64_t>(best.size()) - 1));
      return best[pick];
    }
    return best.front();
  }

 private:
  std::string name_ = "locality-first";
};

/// Power-of-two-choices: sample two distinct candidates from a private
/// deterministic substream and keep the better-ranked one. Never touches
/// the broker tie stream, so enabling it for one run cannot perturb the
/// draw sequence of concurrent default-policy runs.
class KChoicesPolicy : public MatchmakingPolicy {
 public:
  explicit KChoicesPolicy(const Rng& base) : rng_(base.fork("k-choices")) {}

  const std::string& name() const override { return name_; }

  std::size_t choose(const std::vector<CeCandidate>& candidates,
                     Rng& /*tie_rng*/) override {
    const std::size_t n = candidates.size();
    if (n == 1) return 0;
    const auto first = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto second = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (second >= first) ++second;
    const auto rank = [&](std::size_t i) {
      return candidates[i].queue_rank + candidates[i].stage_in_seconds;
    };
    return rank(second) < rank(first) ? second : first;
  }

 private:
  std::string name_ = "k-choices";
  Rng rng_;
};

// ---------------------------------------------------------------------------
// Placement built-ins

/// The historical behavior: every attempt re-enters ordinary matchmaking
/// with no avoidance constraint.
class RematchPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override { return name_; }
  std::vector<std::string> avoid(const PlacementContext&) override { return {}; }

 private:
  std::string name_ = kDefaultPlacement;
};

/// Steer retries away from the CE the immediately previous attempt ran on.
class AvoidPreviousPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> avoid(const PlacementContext& ctx) override {
    if (ctx.tried_ces == nullptr || ctx.tried_ces->empty()) return {};
    return {ctx.tried_ces->back()};
  }

 private:
  std::string name_ = "avoid-previous";
};

/// Steer retries away from every CE earlier attempts already touched.
class SpreadPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> avoid(const PlacementContext& ctx) override {
    if (ctx.tried_ces == nullptr) return {};
    return *ctx.tried_ces;
  }

 private:
  std::string name_ = "spread";
};

// ---------------------------------------------------------------------------
// Replica built-ins

/// The historical behavior: register fresh replicas on the producer's close
/// SE only, and probe the close SE first on stage-in (rotating it to the
/// front of the registration-ordered candidate list).
class CloseSePolicy : public ReplicaPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> placement_targets(
      const std::string& close_se, const std::vector<std::string>&) override {
    return {close_se};
  }

  void probe_order(std::vector<std::string>& candidates,
                   const std::string& close_se) override {
    const auto close_pos = std::find(candidates.begin(), candidates.end(), close_se);
    if (close_pos != candidates.end() && close_pos != candidates.begin()) {
      std::rotate(candidates.begin(), close_pos, close_pos + 1);
    }
  }

 private:
  std::string name_ = kDefaultReplica;
};

/// Register fresh replicas on every SE (close SE included), trading
/// transfer volume at write time for locality on every later read.
class BroadcastPolicy : public ReplicaPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> placement_targets(
      const std::string& close_se,
      const std::vector<std::string>& all_ses) override {
    if (all_ses.empty()) return {close_se};
    return all_ses;
  }

  void probe_order(std::vector<std::string>& candidates,
                   const std::string& close_se) override {
    const auto close_pos = std::find(candidates.begin(), candidates.end(), close_se);
    if (close_pos != candidates.end() && close_pos != candidates.begin()) {
      std::rotate(candidates.begin(), close_pos, close_pos + 1);
    }
  }

 private:
  std::string name_ = "broadcast";
};

// ---------------------------------------------------------------------------
// Admission built-ins

/// The historical behavior: grant each run the WRR share it asked for.
class WeightedAdmission : public AdmissionPolicy {
 public:
  const std::string& name() const override { return name_; }
  std::size_t weight(const std::string&, std::size_t requested) override {
    return requested;
  }

 private:
  std::string name_ = kDefaultAdmission;
};

/// Ignore requested weights: every run gets one grant per gate visit.
class RoundRobinAdmission : public AdmissionPolicy {
 public:
  const std::string& name() const override { return name_; }
  std::size_t weight(const std::string&, std::size_t) override { return 1; }

 private:
  std::string name_ = "round-robin";
};

// ---------------------------------------------------------------------------
// Replication built-ins

/// The centralized baseline: no SE→SE transfers, every remote byte
/// round-trips through the orchestrator. Bit-identical to the
/// pre-decentralization data path.
class NoReplicationPolicy : public ReplicationPolicy {
 public:
  const std::string& name() const override { return name_; }

 private:
  std::string name_ = kDefaultReplication;
};

/// Route remote reads SE→SE and push missing inputs toward the matched
/// CE's close SE as soon as the broker picks it, overlapping the transfer
/// with the job's queueing delay.
class PushToConsumerPolicy : public ReplicationPolicy {
 public:
  const std::string& name() const override { return name_; }
  bool decentralized_reads() const override { return true; }
  bool push_on_match() const override { return true; }

 private:
  std::string name_ = "push-to-consumer";
};

/// Route remote reads SE→SE and, whenever a fresh replica registers,
/// push copies to the first k other SEs in deterministic order — blind
/// pre-staging that trades transfer volume for read locality.
class FanoutKPolicy : public ReplicationPolicy {
 public:
  const std::string& name() const override { return name_; }
  bool decentralized_reads() const override { return true; }

  std::vector<std::string> fanout_targets(
      const std::string& source_se,
      const std::vector<std::string>& all_ses) override {
    std::vector<std::string> targets;
    for (const std::string& se : all_ses) {
      if (se == source_se) continue;
      targets.push_back(se);
      if (targets.size() == kFanout) break;
    }
    return targets;
  }

 private:
  static constexpr std::size_t kFanout = 2;
  std::string name_ = "fanout-k";
};

// ---------------------------------------------------------------------------
// Eviction built-ins

/// Drop least-recently-used replicas first (pinned or not) until the
/// requested head-room is freed; exact last-use ties break on LFN so the
/// victim order never depends on map iteration quirks.
class LruEviction : public EvictionPolicy {
 public:
  explicit LruEviction(std::string name = kDefaultEviction, bool honor_pins = false)
      : name_(std::move(name)), honor_pins_(honor_pins) {}

  const std::string& name() const override { return name_; }

  std::vector<std::string> victims(const std::vector<ReplicaResidency>& resident,
                                   double need_mb) override {
    std::vector<const ReplicaResidency*> order;
    order.reserve(resident.size());
    for (const ReplicaResidency& r : resident) {
      if (honor_pins_ && r.pinned) continue;
      order.push_back(&r);
    }
    std::sort(order.begin(), order.end(),
              [](const ReplicaResidency* a, const ReplicaResidency* b) {
                if (a->last_use != b->last_use) return a->last_use < b->last_use;
                return a->lfn < b->lfn;
              });
    std::vector<std::string> victims;
    double freed = 0.0;
    for (const ReplicaResidency* r : order) {
      if (freed >= need_mb) break;
      victims.push_back(r->lfn);
      freed += r->size_mb;
    }
    return victims;
  }

 private:
  std::string name_;
  bool honor_pins_;
};

// ---------------------------------------------------------------------------

std::string known(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

PolicyRegistry::PolicyRegistry() {
  register_matchmaking(kDefaultMatchmaking, [](const Rng&) {
    return std::make_unique<QueueRankPolicy>();
  });
  register_matchmaking("data-gravity", [](const Rng&) {
    return std::make_unique<DataGravityPolicy>();
  });
  register_matchmaking("locality-first", [](const Rng&) {
    return std::make_unique<LocalityFirstPolicy>();
  });
  register_matchmaking("k-choices", [](const Rng& base) {
    return std::make_unique<KChoicesPolicy>(base);
  });

  register_placement(kDefaultPlacement,
                     [] { return std::make_unique<RematchPolicy>(); });
  register_placement("avoid-previous",
                     [] { return std::make_unique<AvoidPreviousPolicy>(); });
  register_placement("spread", [] { return std::make_unique<SpreadPolicy>(); });

  register_replica(kDefaultReplica, [] { return std::make_unique<CloseSePolicy>(); });
  register_replica("broadcast", [] { return std::make_unique<BroadcastPolicy>(); });

  register_admission(kDefaultAdmission,
                     [] { return std::make_unique<WeightedAdmission>(); });
  register_admission("round-robin",
                     [] { return std::make_unique<RoundRobinAdmission>(); });

  register_replication(kDefaultReplication,
                       [] { return std::make_unique<NoReplicationPolicy>(); });
  register_replication("push-to-consumer",
                       [] { return std::make_unique<PushToConsumerPolicy>(); });
  register_replication("fanout-k",
                       [] { return std::make_unique<FanoutKPolicy>(); });

  register_eviction(kDefaultEviction, [] { return std::make_unique<LruEviction>(); });
  register_eviction("pin-sources", [] {
    return std::make_unique<LruEviction>("pin-sources", /*honor_pins=*/true);
  });
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_matchmaking(const std::string& name,
                                          MatchmakingFactory factory) {
  matchmaking_[name] = std::move(factory);
}

void PolicyRegistry::register_placement(const std::string& name,
                                        PlacementFactory factory) {
  placement_[name] = std::move(factory);
}

void PolicyRegistry::register_replica(const std::string& name,
                                      ReplicaFactory factory) {
  replica_[name] = std::move(factory);
}

void PolicyRegistry::register_admission(const std::string& name,
                                        AdmissionFactory factory) {
  admission_[name] = std::move(factory);
}

void PolicyRegistry::register_replication(const std::string& name,
                                          ReplicationFactory factory) {
  replication_[name] = std::move(factory);
}

void PolicyRegistry::register_eviction(const std::string& name,
                                       EvictionFactory factory) {
  eviction_[name] = std::move(factory);
}

std::unique_ptr<MatchmakingPolicy> PolicyRegistry::make_matchmaking(
    const std::string& name, const Rng& base) const {
  const auto it = matchmaking_.find(name);
  MOTEUR_REQUIRE(it != matchmaking_.end(), ParseError,
                 "unknown matchmaking policy '" + name +
                     "' (known: " + known(matchmaking_names()) + ")");
  return it->second(base);
}

std::unique_ptr<PlacementPolicy> PolicyRegistry::make_placement(
    const std::string& name) const {
  const auto it = placement_.find(name);
  MOTEUR_REQUIRE(it != placement_.end(), ParseError,
                 "unknown placement policy '" + name +
                     "' (known: " + known(placement_names()) + ")");
  return it->second();
}

std::unique_ptr<ReplicaPolicy> PolicyRegistry::make_replica(
    const std::string& name) const {
  const auto it = replica_.find(name);
  MOTEUR_REQUIRE(it != replica_.end(), ParseError,
                 "unknown replica policy '" + name +
                     "' (known: " + known(replica_names()) + ")");
  return it->second();
}

std::unique_ptr<AdmissionPolicy> PolicyRegistry::make_admission(
    const std::string& name) const {
  const auto it = admission_.find(name);
  MOTEUR_REQUIRE(it != admission_.end(), ParseError,
                 "unknown admission policy '" + name +
                     "' (known: " + known(admission_names()) + ")");
  return it->second();
}

std::unique_ptr<ReplicationPolicy> PolicyRegistry::make_replication(
    const std::string& name) const {
  const auto it = replication_.find(name);
  MOTEUR_REQUIRE(it != replication_.end(), ParseError,
                 "unknown replication policy '" + name +
                     "' (known: " + known(replication_names()) + ")");
  return it->second();
}

std::unique_ptr<EvictionPolicy> PolicyRegistry::make_eviction(
    const std::string& name) const {
  const auto it = eviction_.find(name);
  MOTEUR_REQUIRE(it != eviction_.end(), ParseError,
                 "unknown eviction policy '" + name +
                     "' (known: " + known(eviction_names()) + ")");
  return it->second();
}

const std::string& PolicyRegistry::check_matchmaking(const std::string& name,
                                                     const std::string& flag) const {
  MOTEUR_REQUIRE(matchmaking_.count(name) != 0, ParseError,
                 flag + " names unknown matchmaking policy '" + name +
                     "' (known: " + known(matchmaking_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_placement(const std::string& name,
                                                   const std::string& flag) const {
  MOTEUR_REQUIRE(placement_.count(name) != 0, ParseError,
                 flag + " names unknown placement policy '" + name +
                     "' (known: " + known(placement_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_replica(const std::string& name,
                                                 const std::string& flag) const {
  MOTEUR_REQUIRE(replica_.count(name) != 0, ParseError,
                 flag + " names unknown replica policy '" + name +
                     "' (known: " + known(replica_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_admission(const std::string& name,
                                                   const std::string& flag) const {
  MOTEUR_REQUIRE(admission_.count(name) != 0, ParseError,
                 flag + " names unknown admission policy '" + name +
                     "' (known: " + known(admission_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_replication(const std::string& name,
                                                     const std::string& flag) const {
  MOTEUR_REQUIRE(replication_.count(name) != 0, ParseError,
                 flag + " names unknown replication policy '" + name +
                     "' (known: " + known(replication_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_eviction(const std::string& name,
                                                  const std::string& flag) const {
  MOTEUR_REQUIRE(eviction_.count(name) != 0, ParseError,
                 flag + " names unknown eviction policy '" + name +
                     "' (known: " + known(eviction_names()) + ")");
  return name;
}

bool PolicyRegistry::matchmaking_wants_stage_in(const std::string& name) const {
  const Rng probe(0);
  return make_matchmaking(name, probe)->wants_stage_in();
}

bool PolicyRegistry::replication_is_decentralized(const std::string& name) const {
  return make_replication(name)->decentralized_reads();
}

std::vector<std::string> PolicyRegistry::matchmaking_names() const {
  std::vector<std::string> names;
  names.reserve(matchmaking_.size());
  for (const auto& [name, factory] : matchmaking_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::placement_names() const {
  std::vector<std::string> names;
  names.reserve(placement_.size());
  for (const auto& [name, factory] : placement_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::replica_names() const {
  std::vector<std::string> names;
  names.reserve(replica_.size());
  for (const auto& [name, factory] : replica_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::admission_names() const {
  std::vector<std::string> names;
  names.reserve(admission_.size());
  for (const auto& [name, factory] : admission_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::replication_names() const {
  std::vector<std::string> names;
  names.reserve(replication_.size());
  for (const auto& [name, factory] : replication_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::eviction_names() const {
  std::vector<std::string> names;
  names.reserve(eviction_.size());
  for (const auto& [name, factory] : eviction_) names.push_back(name);
  return names;
}

}  // namespace moteur::policy
