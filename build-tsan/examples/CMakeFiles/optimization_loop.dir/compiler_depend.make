# Empty compiler generated dependencies file for optimization_loop.
# This may be replaced when dependencies are built.
