#include "grid/config.hpp"

#include <cmath>

#include "util/error.hpp"

namespace moteur::grid {

LatencyModel LatencyModel::constant_of(double seconds) {
  LatencyModel m;
  m.kind = Kind::kConstant;
  m.constant = seconds;
  return m;
}

LatencyModel LatencyModel::uniform(double lo, double hi) {
  MOTEUR_REQUIRE(lo <= hi, InternalError, "LatencyModel::uniform: lo > hi");
  LatencyModel m;
  m.kind = Kind::kUniform;
  m.lo = lo;
  m.hi = hi;
  return m;
}

LatencyModel LatencyModel::lognormal(double median, double sigma) {
  LatencyModel m;
  m.kind = Kind::kLognormal;
  m.median = median;
  m.sigma = sigma;
  return m;
}

LatencyModel LatencyModel::lognormal_mixture(double median, double sigma,
                                             double straggler_probability,
                                             double straggler_factor) {
  LatencyModel m;
  m.kind = Kind::kLognormalMixture;
  m.median = median;
  m.sigma = sigma;
  m.straggler_probability = straggler_probability;
  m.straggler_factor = straggler_factor;
  return m;
}

double LatencyModel::mean() const {
  switch (kind) {
    case Kind::kConstant:
      return constant;
    case Kind::kUniform:
      return 0.5 * (lo + hi);
    case Kind::kLognormal:
      return median * std::exp(0.5 * sigma * sigma);
    case Kind::kLognormalMixture: {
      const double body = median * std::exp(0.5 * sigma * sigma);
      return (1.0 - straggler_probability) * body +
             straggler_probability * body * straggler_factor;
    }
  }
  return 0.0;
}

std::size_t GridConfig::total_slots() const {
  std::size_t total = 0;
  for (const auto& ce : computing_elements) total += ce.worker_slots;
  return total;
}

GridConfig GridConfig::egee2006(std::uint64_t seed) {
  GridConfig cfg;
  cfg.seed = seed;

  // ~20 sites of 16-128 nodes: thousands of slots, so data parallelism is
  // capacity-unconstrained for the paper's workloads (§3.5.2 hypothesis).
  const std::size_t site_slots[] = {128, 96, 96, 64, 64, 64, 48, 48, 48, 32,
                                    32,  32, 32, 24, 24, 16, 16, 16, 16, 16};
  int index = 0;
  for (std::size_t slots : site_slots) {
    ComputingElementConfig ce;
    ce.name = "ce" + std::to_string(index);
    ce.worker_slots = slots;
    // Heterogeneous hardware across sites.
    ce.speed_factor = 0.8 + 0.05 * static_cast<double>(index % 9);
    ce.local_latency = LatencyModel::lognormal(20.0, 0.5);
    cfg.computing_elements.push_back(ce);
    ++index;
  }

  // Paper §5.1: overhead "around 10 minutes" and "quite variable (±5 min)".
  // The submission command itself serializes on the UI host (~20 s/job);
  // the middleware stages are pipelined, with lognormal bodies and
  // straggler tails reproducing the reported spread.
  cfg.ui_submission_latency = LatencyModel::lognormal(18.0, 0.30);
  cfg.submission_latency = LatencyModel::lognormal_mixture(60.0, 0.40, 0.03, 4.0);
  cfg.scheduling_latency = LatencyModel::lognormal_mixture(120.0, 0.45, 0.04, 4.0);
  cfg.queueing_latency = LatencyModel::lognormal_mixture(240.0, 0.50, 0.06, 8.0);
  cfg.compute_noise_stddev = 0.10;

  cfg.broker_concurrency = 16;

  // 7.8 MB image (2.3 MB compressed) over a shared WAN: a few seconds.
  cfg.transfer_latency_seconds = 5.0;
  cfg.transfer_bandwidth_mb_per_s = 2.0;

  cfg.failure_probability = 0.04;
  cfg.max_attempts = 5;

  cfg.background_jobs_per_hour = 200.0;
  cfg.background_mean_duration = 1800.0;
  return cfg;
}

GridConfig GridConfig::dedicated_cluster(std::size_t nodes, std::uint64_t seed) {
  GridConfig cfg;
  cfg.seed = seed;
  ComputingElementConfig ce;
  ce.name = "cluster";
  ce.worker_slots = nodes;
  ce.speed_factor = 1.0;
  cfg.computing_elements.push_back(ce);
  cfg.submission_latency = LatencyModel::constant_of(0.5);
  cfg.scheduling_latency = LatencyModel::constant_of(0.5);
  cfg.queueing_latency = LatencyModel::constant_of(0.0);
  cfg.broker_concurrency = 64;
  cfg.transfer_latency_seconds = 0.01;
  cfg.transfer_bandwidth_mb_per_s = 100.0;
  return cfg;
}

GridConfig GridConfig::constant(double overhead_seconds, std::size_t slots,
                                std::uint64_t seed) {
  GridConfig cfg;
  cfg.seed = seed;
  ComputingElementConfig ce;
  ce.name = "ideal";
  ce.worker_slots = slots;
  ce.speed_factor = 1.0;
  cfg.computing_elements.push_back(ce);
  cfg.submission_latency = LatencyModel::constant_of(overhead_seconds);
  cfg.scheduling_latency = LatencyModel::constant_of(0.0);
  cfg.queueing_latency = LatencyModel::constant_of(0.0);
  // Submission must never serialize in the ideal grid.
  cfg.broker_concurrency = slots;
  return cfg;
}

}  // namespace moteur::grid
