#pragma once

#include <cstddef>
#include <vector>

namespace moteur::model {

/// T[i][j]: duration (seconds, grid overhead included) of the treatment of
/// data set j by the i-th service of the critical path (paper §3.5.1).
/// Rows are services (i < nW), columns data sets (j < nD).
using TimeMatrix = std::vector<std::vector<double>>;

TimeMatrix constant_times(std::size_t n_w, std::size_t n_d, double t);

/// Validate shape (non-empty, rectangular, non-negative); throws
/// InternalError otherwise.
void validate(const TimeMatrix& times);

/// Equation (1): sequential case (workflow parallelism only on the critical
/// path): Sigma = sum_i sum_j T_ij.
double sigma_sequential(const TimeMatrix& times);

/// Equation (2): data parallelism only: Sigma_DP = sum_i max_j T_ij.
double sigma_dp(const TimeMatrix& times);

/// Equation (3): service parallelism only (unit-capacity pipeline):
///   Sigma_SP = T_{nW-1,nD-1} + m_{nW-1,nD-1}
///   m_ij = max(T_{i-1,j} + m_{i-1,j}, T_{i,j-1} + m_{i,j-1})
///   m_0j = sum_{k<j} T_0k ;  m_i0 = sum_{k<i} T_k0.
double sigma_sp(const TimeMatrix& times);

/// Equation (4): data + service parallelism:
///   Sigma_DSP = max_j sum_i T_ij.
double sigma_dsp(const TimeMatrix& times);

// --- asymptotic speed-ups under constant execution times (§3.5.4) --------

/// S_DP = Sigma / Sigma_DP = nD (service parallelism disabled).
double speedup_dp(std::size_t n_w, std::size_t n_d);

/// S_DSP = Sigma_SP / Sigma_DSP = (nD + nW - 1) / nW
/// (data parallelism's gain when service parallelism is already enabled).
double speedup_dsp(std::size_t n_w, std::size_t n_d);

/// S_SP = Sigma / Sigma_SP = nD * nW / (nD + nW - 1)
/// (service parallelism's gain when data parallelism is disabled).
double speedup_sp(std::size_t n_w, std::size_t n_d);

}  // namespace moteur::model
