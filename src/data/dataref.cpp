#include "data/dataref.hpp"

#include <algorithm>

namespace moteur::data {

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_append(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<unsigned char>(value >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t derived_digest(std::uint64_t service_digest, const std::string& port,
                             std::vector<PortDigest> inputs) {
  std::sort(inputs.begin(), inputs.end());
  std::uint64_t h = fnv1a(port, fnv1a_append(kFnvOffset, service_digest));
  for (const auto& [in_port, digest] : inputs) {
    h = fnv1a_append(fnv1a(in_port, h), digest);
  }
  return h;
}

std::string digest_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

}  // namespace moteur::data
