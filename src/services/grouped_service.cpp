#include "services/grouped_service.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace moteur::services {

GroupedService::GroupedService(std::string id, std::vector<Member> members,
                               std::vector<workflow::InternalLink> internal_links)
    : Service(std::move(id)),
      members_(std::move(members)),
      internal_links_(std::move(internal_links)) {
  MOTEUR_REQUIRE(members_.size() >= 2, InternalError,
                 "grouped service needs at least two members");
  for (const auto& member : members_) {
    MOTEUR_REQUIRE(member.service != nullptr, InternalError,
                   "grouped service member '" + member.name + "' has no implementation");
  }
}

const workflow::InternalLink* GroupedService::internal_feed(const std::string& member,
                                                            const std::string& port) const {
  for (const auto& link : internal_links_) {
    if (link.to_member == member && link.to_port == port) return &link;
  }
  return nullptr;
}

std::vector<std::string> GroupedService::input_ports() const {
  std::vector<std::string> ports;
  for (const auto& member : members_) {
    for (const auto& port : member.service->input_ports()) {
      if (internal_feed(member.name, port) == nullptr) {
        ports.push_back(member.name + "/" + port);
      }
    }
  }
  return ports;
}

std::vector<std::string> GroupedService::output_ports() const {
  std::vector<std::string> ports;
  for (const auto& member : members_) {
    for (const auto& port : member.service->output_ports()) {
      ports.push_back(member.name + "/" + port);
    }
  }
  return ports;
}

Inputs GroupedService::member_inputs(const Member& member, const Inputs& external,
                                     const std::map<std::string, Result>& results) const {
  // Internal tokens inherit the iteration index of the invocation so member
  // services relying on it (naming, profiles) keep working inside a group.
  data::IndexVector invocation_index;
  if (!external.empty()) invocation_index = external.begin()->second.indices();
  Inputs inputs;
  for (const auto& port : member.service->input_ports()) {
    if (const workflow::InternalLink* link = internal_feed(member.name, port)) {
      const auto result_it = results.find(link->from_member);
      MOTEUR_REQUIRE(result_it != results.end(), EnactmentError,
                     "grouped service '" + id() + "': member '" + link->from_member +
                         "' has not run before '" + member.name + "'");
      const auto value_it = result_it->second.outputs.find(link->from_port);
      MOTEUR_REQUIRE(value_it != result_it->second.outputs.end(), EnactmentError,
                     "grouped service '" + id() + "': member '" + link->from_member +
                         "' produced no output '" + link->from_port + "'");
      // Wrap the intermediate value as a token; lineage for intermediate
      // results inside a group is tracked at the group level by the enactor,
      // so a synthetic leaf is sufficient here.
      inputs.emplace(port,
                     data::Token(value_it->second.payload, value_it->second.repr,
                                 invocation_index,
                                 data::Provenance::source(
                                     id() + "." + link->from_member + "." + link->from_port, 0)));
    } else {
      const auto it = external.find(member.name + "/" + port);
      MOTEUR_REQUIRE(it != external.end(), EnactmentError,
                     "grouped service '" + id() + "': missing external input '" +
                         member.name + "/" + port + "'");
      inputs.emplace(port, it->second);
    }
  }
  return inputs;
}

Result GroupedService::invoke(const Inputs& inputs) {
  std::map<std::string, Result> member_results;
  Result combined;
  for (const auto& member : members_) {
    Result result = member.service->invoke(member_inputs(member, inputs, member_results));
    for (const auto& [port, value] : result.outputs) {
      combined.outputs.emplace(member.name + "/" + port, value);
    }
    member_results.emplace(member.name, std::move(result));
  }
  return combined;
}

grid::JobRequest GroupedService::job_profile(const Inputs& inputs) const {
  grid::JobRequest request;
  request.name = id();
  for (const auto& member : members_) {
    // Ask each member for its own profile; feed it the member's inputs when
    // they are externally available, otherwise an empty binding (profiles
    // rarely depend on values).
    Inputs member_external;
    for (const auto& port : member.service->input_ports()) {
      const auto it = inputs.find(member.name + "/" + port);
      if (it != inputs.end()) member_external.emplace(port, it->second);
    }
    const grid::JobRequest profile = member.service->job_profile(member_external);
    request.compute_seconds += profile.compute_seconds;

    // Input transfers: only externally-fed ports are staged; internal feeds
    // stay on the worker node. Profiles carry aggregate megabytes, so
    // prorate by the share of external input ports.
    const auto ports = member.service->input_ports();
    std::size_t external_ports = 0;
    for (const auto& port : ports) {
      if (internal_feed(member.name, port) == nullptr) ++external_ports;
    }
    if (!ports.empty()) {
      request.input_megabytes += profile.input_megabytes *
                                 static_cast<double>(external_ports) /
                                 static_cast<double>(ports.size());
    }
    // Every member output is registered (it may have external consumers).
    request.output_megabytes += profile.output_megabytes;
  }
  return request;
}

}  // namespace moteur::services
