# Empty dependencies file for bench_diagrams.
# This may be replaced when dependencies are built.
