#include "enactor/timeline_csv.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace moteur::enactor {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string timeline_to_csv(const Timeline& timeline, bool data_plane_columns) {
  std::ostringstream os;
  os << "processor,data,submit_s,start_s,end_s,span_s,overhead_s,site,failed,attempt,"
        "superseded,status,skipped";
  if (data_plane_columns) {
    os << ",stagein_mb,stagein_remote_mb,stage_se,bytes_ui_mb,bytes_peer_mb";
  }
  os << '\n';
  auto traces = timeline.traces();
  std::sort(traces.begin(), traces.end(),
            [](const InvocationTrace& a, const InvocationTrace& b) {
              return a.submit_time < b.submit_time;
            });
  for (const auto& trace : traces) {
    os << csv_escape(trace.processor) << ',' << csv_escape(trace.data_label()) << ','
       << format_fixed(trace.submit_time, 3) << ',' << format_fixed(trace.start_time, 3)
       << ',' << format_fixed(trace.end_time, 3) << ','
       << format_fixed(trace.span_seconds(), 3) << ','
       << (trace.job ? format_fixed(trace.job->overhead_seconds(), 3) : std::string())
       << ',' << csv_escape(trace.job ? trace.job->computing_element : std::string())
       << ',' << (trace.failed ? "1" : "0") << ',' << trace.attempt << ','
       << (trace.superseded ? "1" : "0") << ',' << to_string(trace.status) << ','
       << (trace.skipped ? "1" : "0");
    if (data_plane_columns) {
      os << ',' << (trace.job ? format_fixed(trace.job->staged_in_megabytes, 3) : std::string())
         << ','
         << (trace.job ? format_fixed(trace.job->remote_input_megabytes, 3) : std::string())
         << ',' << csv_escape(trace.job ? trace.job->staging_element : std::string()) << ','
         << (trace.job ? format_fixed(trace.job->bytes_via_ui, 3) : std::string()) << ','
         << (trace.job ? format_fixed(trace.job->bytes_peer, 3) : std::string());
    }
    os << '\n';
  }
  // Breaker state changes ride along as pseudo-rows: processor "(breaker)",
  // the CE in the site column, the target state in the status column.
  for (const auto& t : timeline.breaker_transitions()) {
    os << "(breaker)," << csv_escape(t.computing_element) << ','
       << format_fixed(t.time, 3) << ',' << format_fixed(t.time, 3) << ','
       << format_fixed(t.time, 3) << ",0.000,," << csv_escape(t.computing_element)
       << ",0,0,0," << grid::to_string(t.to) << ",0\n";
  }
  return os.str();
}

}  // namespace moteur::enactor
