// Randomized cross-module properties: random layered workflows over random
// data sets, enacted under every policy on the simulated grid. Whatever the
// optimization level, the *science* must be identical — same result
// multiset, same provenance identities — and the §3.5 dominance relations
// must hold on a deterministic grid.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workflow/analysis.hpp"
#include "workflow/grouping.hpp"
#include "workflow/scufl.hpp"

namespace moteur {
namespace {

struct RandomApplication {
  workflow::Workflow workflow{"random"};
  data::InputDataSet inputs;
  std::vector<std::pair<std::string, services::JobProfile>> profiles;
};

/// Layered random DAG: sources feed layer 0; each service picks 1-2 feeds
/// from strictly earlier outputs; every terminal output reaches a sink.
RandomApplication make_random_application(Rng& rng) {
  RandomApplication app;

  struct Output {
    std::string processor;
    std::string port;
  };
  std::vector<Output> available;

  const std::size_t n_sources = 1 + static_cast<std::size_t>(rng.uniform_int(0, 1));
  for (std::size_t s = 0; s < n_sources; ++s) {
    const std::string name = "src" + std::to_string(s);
    app.workflow.add_source(name);
    available.push_back(Output{name, "out"});
    const std::size_t items = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t j = 0; j < items; ++j) {
      app.inputs.add_item(name, name + "-item" + std::to_string(j));
    }
  }

  const std::size_t layers = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  std::set<std::string> consumed;  // "proc.port" keys with a consumer
  int counter = 0;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    const std::size_t width = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<Output> produced;
    for (std::size_t w = 0; w < width; ++w) {
      const std::string name = "P" + std::to_string(counter++);
      const std::size_t n_inputs =
          1 + static_cast<std::size_t>(rng.uniform_int(0, 1));
      std::vector<std::string> input_ports;
      for (std::size_t i = 0; i < n_inputs; ++i) {
        input_ports.push_back("in" + std::to_string(i));
      }
      // Occasionally a cross product (only meaningful with 2 ports).
      const auto iteration = n_inputs == 2 && rng.bernoulli(0.3)
                                 ? workflow::IterationStrategy::kCross
                                 : workflow::IterationStrategy::kDot;
      app.workflow.add_processor(name, input_ports, {"out"}, iteration);
      for (std::size_t i = 0; i < n_inputs; ++i) {
        const Output& feed = available[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(available.size()) - 1))];
        app.workflow.link(feed.processor, feed.port, name, input_ports[i]);
        consumed.insert(feed.processor + "." + feed.port);
      }
      produced.push_back(Output{name, "out"});
      app.profiles.emplace_back(
          name, services::JobProfile{std::floor(rng.uniform(5.0, 60.0)), 0.0, 0.0});
    }
    available.insert(available.end(), produced.begin(), produced.end());
  }

  // Terminal outputs flow into sinks.
  int sink_counter = 0;
  for (const Output& output : available) {
    if (output.port == "out" && consumed.count(output.processor + ".out") == 0) {
      const std::string sink = "sink" + std::to_string(sink_counter++);
      app.workflow.add_sink(sink);
      app.workflow.link(output.processor, output.port, sink, "in");
    }
  }
  app.workflow.validate();
  return app;
}

enactor::EnactmentResult enact(const RandomApplication& app,
                               enactor::EnactmentPolicy policy) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::constant(30.0));
  enactor::SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  for (const auto& proc : app.workflow.processors()) {
    if (proc.kind != workflow::ProcessorKind::kService) continue;
    for (const auto& [name, profile] : app.profiles) {
      if (name == proc.name) {
        registry.add(services::make_simulated_service(name, proc.input_ports,
                                                      proc.output_ports, profile));
      }
    }
  }
  enactor::Enactor moteur(backend, registry, policy);
  return moteur.run({.workflow = app.workflow, .inputs = app.inputs});
}

/// Signature of a run's science: per sink, the multiset of result indices.
std::map<std::string, std::multiset<data::IndexVector>> science_of(
    const enactor::EnactmentResult& result) {
  std::map<std::string, std::multiset<data::IndexVector>> out;
  for (const auto& [sink, tokens] : result.sink_outputs) {
    for (const auto& token : tokens) out[sink].insert(token.indices());
  }
  return out;
}

class RandomWorkflows : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkflows, AllPoliciesProduceTheSameScience) {
  Rng rng(GetParam());
  const RandomApplication app = make_random_application(rng);

  const auto reference = enact(app, enactor::EnactmentPolicy::sp_dp());
  const auto reference_science = science_of(reference);
  EXPECT_EQ(reference.failures(), 0u);

  for (const auto* config : {"NOP", "JG", "SP", "DP", "SP+DP+JG"}) {
    const auto result = enact(app, enactor::EnactmentPolicy::parse(config));
    EXPECT_EQ(science_of(result), reference_science) << "policy " << config;
    EXPECT_EQ(result.invocations(), reference.invocations()) << "policy " << config;
  }
}

TEST_P(RandomWorkflows, DominanceRelationsOnDeterministicGrid) {
  Rng rng(GetParam() * 31 + 7);
  const RandomApplication app = make_random_application(rng);

  const double nop = enact(app, enactor::EnactmentPolicy::nop()).makespan();
  const double sp = enact(app, enactor::EnactmentPolicy::sp()).makespan();
  const double dp = enact(app, enactor::EnactmentPolicy::dp()).makespan();
  const double dsp = enact(app, enactor::EnactmentPolicy::sp_dp()).makespan();

  const double eps = 1e-9;
  EXPECT_LE(sp, nop + eps);   // adding SP never hurts
  EXPECT_LE(dp, nop + eps);   // adding DP never hurts
  EXPECT_LE(dsp, sp + eps);   // DP on top of SP never hurts
  EXPECT_LE(dsp, dp + eps);   // SP on top of DP never hurts
}

TEST_P(RandomWorkflows, GroupingRewriteIsSemanticallyTransparent) {
  Rng rng(GetParam() * 131 + 3);
  const RandomApplication app = make_random_application(rng);

  workflow::GroupingReport report;
  const workflow::Workflow grouped =
      workflow::group_sequential_processors(app.workflow, &report);
  EXPECT_NO_THROW(grouped.validate());

  // Members never disappear, never duplicate.
  std::multiset<std::string> original_services, grouped_members;
  for (const auto* proc : app.workflow.services()) {
    original_services.insert(proc->name);
  }
  for (const auto* proc : grouped.services()) {
    if (proc->is_grouped()) {
      for (const auto& member : proc->group_members) grouped_members.insert(member);
    } else {
      grouped_members.insert(proc->name);
    }
  }
  EXPECT_EQ(original_services, grouped_members);

  // Scufl round-trip of the rewritten workflow (grouped processors incl.
  // member lists and internal links survive serialization).
  const workflow::Workflow reparsed = workflow::from_scufl(workflow::to_scufl(grouped));
  EXPECT_EQ(reparsed.processors().size(), grouped.processors().size());
  for (const auto* proc : grouped.services()) {
    EXPECT_EQ(reparsed.processor(proc->name).group_members, proc->group_members);
    EXPECT_EQ(reparsed.processor(proc->name).internal_links.size(),
              proc->internal_links.size());
  }
}

TEST_P(RandomWorkflows, TimelineInvariants) {
  Rng rng(GetParam() * 17 + 11);
  const RandomApplication app = make_random_application(rng);
  const auto result = enact(app, enactor::EnactmentPolicy::sp_dp());

  for (const auto& trace : result.timeline.traces()) {
    EXPECT_LE(trace.submit_time, trace.start_time + 1e-9);
    EXPECT_LE(trace.start_time, trace.end_time + 1e-9);
    ASSERT_TRUE(trace.job.has_value());
    EXPECT_GE(trace.job->overhead_seconds(), -1e-9);
    EXPECT_EQ(trace.job->state, grid::JobState::kDone);
  }
  EXPECT_DOUBLE_EQ(result.timeline.makespan(), result.finished_at);
}

TEST_P(RandomWorkflows, CapacityCapIsRespected) {
  Rng rng(GetParam() * 57 + 23);
  const RandomApplication app = make_random_application(rng);
  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.data_parallelism_cap = 2;
  const auto result = enact(app, policy);

  // Per processor, no instant may carry more than 2 overlapping invocations.
  for (const auto* proc : app.workflow.services()) {
    const auto traces = result.timeline.for_processor(proc->name);
    for (const auto* a : traces) {
      std::size_t overlapping = 0;
      for (const auto* b : traces) {
        if (b->submit_time <= a->submit_time && a->submit_time < b->end_time) {
          ++overlapping;
        }
      }
      EXPECT_LE(overlapping, 2u) << proc->name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkflows,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace moteur
