#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/replica_catalog.hpp"
#include "grid/background_load.hpp"
#include "grid/config.hpp"
#include "grid/job.hpp"
#include "grid/overhead_model.hpp"
#include "grid/resource_broker.hpp"
#include "grid/storage_element.hpp"
#include "policy/policy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace moteur::obs {
class MetricsRegistry;
}

namespace moteur::grid {

/// One third-party SE→SE transfer, surfaced to the installed listener at
/// request time and on completion. Decentralized replication policies
/// schedule these on the pairwise SE links; the orchestrator only issues
/// the command (control stays central, data moves peer-to-peer).
struct TransferEvent {
  enum class Phase { kStarted, kDone };
  Phase phase = Phase::kStarted;
  double time = 0.0;
  std::string lfn;
  std::string from_se;
  std::string to_se;
  double megabytes = 0.0;
  std::string trigger;           ///< "match" or "fanout"
  double elapsed_seconds = 0.0;  ///< kDone only: link time excluding queueing
};

/// Facade over the simulated EGEE-like infrastructure. Callers (the service
/// layer) submit JobRequests and get a completion callback with the full
/// JobRecord; everything in between — broker pipeline, matchmaking, batch
/// queues, staging, payload, failures and resubmission — happens inside.
class Grid {
 public:
  using CompletionCallback = std::function<void(const JobRecord&)>;

  Grid(sim::Simulator& simulator, GridConfig config);

  /// Submit a job. The callback fires exactly once, with state kDone or
  /// (after exhausting retries) kFailed.
  JobId submit(const JobRequest& request, CompletionCallback on_complete);

  sim::Simulator& simulator() { return simulator_; }
  const GridConfig& config() const { return config_; }
  const ResourceBroker& broker() const { return broker_; }

  /// Attach (or detach, with nullptr) the per-CE circuit-breaker ledger the
  /// broker consults during matchmaking, displacing any already attached.
  /// Not owned.
  void set_health(CeHealth* health) { broker_.set_health(health); }

  /// Shared-broker arbitration (see ResourceBroker): attach one more ledger
  /// without displacing the others / detach exactly one.
  void add_health(CeHealth* health) { broker_.add_health(health); }
  void remove_health(CeHealth* health) { broker_.remove_health(health); }

  /// Attach (or detach, with nullptr) the replica catalog that turns the
  /// data plane on: jobs with input_refs stage each file through the chosen
  /// CE's close StorageElement (remote replicas pay the penalty), successful
  /// jobs register their inputs as fresh replicas there, and — with
  /// GridConfig::data_aware_matchmaking — the broker ranks CEs by estimated
  /// stage-in cost. Not owned. Without a catalog the grid behaves
  /// bit-identically to the pre-data-plane code. Attaching also installs
  /// the configured SE capacities and eviction policy on the catalog.
  void set_catalog(data::ReplicaCatalog* catalog);
  data::ReplicaCatalog* catalog() const { return catalog_; }

  /// Attach (or detach, with nullptr) the metrics registry receiving the
  /// per-policy decision counters (`moteur_policy_decisions_total`). Not
  /// owned; record from the drive thread only.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// SEs a fresh replica produced on `ce_name` should be registered on,
  /// per the grid's ReplicaPolicy (default `close-se`: the CE's close SE).
  std::vector<std::string> replica_targets(const std::string& ce_name);

  /// The StorageElement a CE stages through (the default SE when the site
  /// does not name one).
  StorageElement& close_storage(const std::string& ce_name);
  const std::string& close_storage_name(const std::string& ce_name);

  /// Estimated stage-in seconds for `request` if matched to `ce_name`,
  /// priced from the catalog's replica locations (0 without a catalog).
  double stage_in_estimate_seconds(const JobRequest& request, const std::string& ce_name);

  /// Observer for SE→SE transfers (started / completed). Not owned; called
  /// from the drive thread.
  void set_transfer_listener(std::function<void(const TransferEvent&)> listener) {
    transfer_listener_ = std::move(listener);
  }

  /// Request an SE→SE third-party copy of `lfn` onto `to_se`. Deduplicated
  /// against in-flight transfers and existing replicas; deferred while
  /// either endpoint is inside an outage window. No-op without a catalog.
  void start_transfer(const std::string& lfn, double megabytes,
                      const std::string& from_se, const std::string& to_se,
                      const std::string& trigger);

  /// Hook for the execution backend: a fresh replica of `lfn` registered on
  /// `se_name`. Feeds the ReplicationPolicy's background fanout.
  void note_replica_registered(const std::string& lfn, const std::string& se_name,
                               double megabytes);

  /// Does the active ReplicationPolicy route remote reads SE→SE (peer
  /// pulls) instead of through the orchestrator?
  bool decentralized_reads() const { return decentralized_; }

  /// Cumulative busy time of the finite orchestrator link (0 when the
  /// bandwidth is unlimited and the link model is bypassed).
  double ui_busy_seconds() const { return ui_busy_seconds_; }

  /// Records of all completed (done or failed) jobs, completion order.
  const std::vector<JobRecord>& completed_jobs() const { return completed_; }

  struct Stats {
    std::size_t submitted = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t failed_attempts = 0;
    /// Storage-side fault trace (SE fault injection on).
    std::size_t replica_faults = 0;
    std::size_t replica_failovers = 0;
    std::size_t data_lost_jobs = 0;
    /// SE→SE third-party transfer trace (decentralized replication).
    std::size_t transfers_started = 0;
    std::size_t transfers_completed = 0;
    double transfer_megabytes = 0.0;
    /// Megabytes that round-tripped through the orchestrator/UI link.
    double ui_megabytes = 0.0;
    RunningStats overhead_seconds;
    RunningStats total_seconds;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PendingJob {
    JobRecord record;
    JobRequest request;
    CompletionCallback on_complete;
    bool completed = false;      // a racing attempt already finished the job
    int in_flight_attempts = 0;  // attempts currently racing
    int clones_launched = 0;     // speculative copies started so far
  };

  struct StagePlan {
    double effective_megabytes = 0.0;  // penalty applied to remote refs
    double remote_megabytes = 0.0;     // pre-penalty size of remote refs
  };
  StagePlan plan_stage_in(const JobRequest& request, const std::string& ce_name) const;

  /// Like StagePlan, but resolved against live replica state with SE fault
  /// injection applied: down SEs are skipped, lost/corrupt replicas are
  /// invalidated in the catalog and failed over, and inputs with no
  /// surviving replica land in lost_files.
  struct StageResolution {
    double effective_megabytes = 0.0;
    double remote_megabytes = 0.0;
    int faults = 0;
    int failovers = 0;
    std::vector<std::string> lost_files;
  };
  StageResolution resolve_stage_in(const JobRequest& request, const std::string& se_name);

  void start_attempt(const std::shared_ptr<PendingJob>& job);
  void arm_speculative_watchdog(const std::shared_ptr<PendingJob>& job);
  void enter_site(const std::shared_ptr<PendingJob>& job, ComputingElement& ce);
  void run_in_slot(const std::shared_ptr<PendingJob>& job, ComputingElement& ce);
  void finish(const std::shared_ptr<PendingJob>& job, JobState final_state);

  /// Move `megabytes` across the finite orchestrator link, FCFS behind
  /// concurrent stagings; `on_done(elapsed)` gets queueing + transfer time.
  /// With an unlimited link (or zero bytes) `on_done(0)` runs synchronously
  /// so the event sequence stays bit-identical to the unmodeled path.
  void ui_stage(double megabytes, std::function<void(double)> on_done);
  void record_ui_bytes(double megabytes);
  void emit_transfer(const TransferEvent& event);
  /// Live replica of `lfn` cheapest to copy onto `to_se` (pairwise cost,
  /// registration order breaking ties); empty when none survives or the
  /// destination already holds one.
  std::string cheapest_live_source(const std::string& lfn, const std::string& to_se);
  void begin_transfer(const std::string& lfn, double megabytes,
                      const std::string& from_se, const std::string& to_se,
                      const std::string& trigger);
  void maybe_push_for_match(const JobRequest& request, const std::string& ce_name);

  sim::Simulator& simulator_;
  GridConfig config_;
  Rng rng_;
  OverheadModel overhead_;
  /// The user-interface host: submission commands run one at a time.
  sim::Resource ui_;
  Rng ui_rng_;
  ResourceBroker broker_;
  StorageElement storage_;  // the default SE ("se0")
  /// Dedicated substream for replica loss/corruption draws: enabling SE
  /// fault injection never perturbs any other stochastic component.
  Rng se_rng_;
  /// Any SE outage window or replica fault probability configured? Gates
  /// every storage-fault code path so the zero-fault data plane stays
  /// bit-identical to the fault-free implementation.
  bool storage_faults_enabled_ = false;
  std::vector<std::unique_ptr<StorageElement>> extra_storage_;
  std::map<std::string, StorageElement*> storage_by_name_;
  std::map<std::string, StorageElement*> close_storage_;  // CE name -> SE
  /// Every SE name in deterministic (map) order, for replica placement.
  std::vector<std::string> storage_names_;
  std::unique_ptr<policy::ReplicaPolicy> replica_policy_;
  std::unique_ptr<policy::ReplicationPolicy> replication_;
  bool decentralized_ = false;
  /// The finite orchestrator/UI data link (null = unlimited bandwidth,
  /// the historical free-staging behavior).
  std::unique_ptr<sim::Resource> ui_link_;
  double ui_busy_seconds_ = 0.0;
  /// In-flight SE→SE transfers keyed "lfn|destination" for deduplication.
  std::set<std::string> pending_transfers_;
  std::function<void(const TransferEvent&)> transfer_listener_;
  obs::MetricsRegistry* metrics_ = nullptr;               // not owned
  data::ReplicaCatalog* catalog_ = nullptr;               // not owned
  std::unique_ptr<BackgroundLoad> background_;
  JobId next_job_id_ = 1;
  std::vector<JobRecord> completed_;
  Stats stats_;
};

}  // namespace moteur::grid
