file(REMOVE_RECURSE
  "libmoteur_workflow.a"
)
