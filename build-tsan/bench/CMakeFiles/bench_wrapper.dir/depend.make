# Empty dependencies file for bench_wrapper.
# This may be replaced when dependencies are built.
