// E7 — Quantifies the paper's central experimental finding: on a production
// grid the constant-time hypothesis fails, so service parallelism keeps
// paying on top of data parallelism. We sweep the overhead variability of
// the simulated grid from zero (cluster-like) to EGEE-like and beyond, and
// report the measured S_SDP = Sigma_DP / Sigma_DSP on the Bronze-Standard
// workflow. Theory: S_SDP = 1 at zero variance; it grows with sigma.
#include <cstdio>

#include "app/bronze_standard.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace moteur;

double run_bronze(grid::GridConfig config, enactor::EnactmentPolicy policy,
                  std::size_t n_pairs) {
  // Average over a few grid realizations for a stable estimate.
  double total = 0.0;
  const int replicas = 5;
  for (int r = 0; r < replicas; ++r) {
    config.seed = 20060619 + 1000 * static_cast<std::uint64_t>(r);
    sim::Simulator simulator;
    grid::Grid grid(simulator, config);
    enactor::SimGridBackend backend(grid);
    services::ServiceRegistry registry;
    app::register_simulated_services(registry);
    enactor::Enactor moteur(backend, registry, policy);
    enactor::RunRequest request;
    request.workflow = app::bronze_standard_workflow();
    request.inputs = app::bronze_standard_dataset(n_pairs);
    total += moteur.run(std::move(request)).makespan();
  }
  return total / replicas;
}

grid::GridConfig grid_with_sigma(double sigma_scale) {
  grid::GridConfig config = grid::GridConfig::egee2006();
  // Keep medians (so mean overhead stays comparable) and scale the
  // variability knobs: lognormal sigmas, stragglers, compute noise,
  // failures, background load.
  const auto scale = [&](grid::LatencyModel& model) {
    model.sigma *= sigma_scale;
    model.straggler_probability *= sigma_scale;
  };
  scale(config.submission_latency);
  scale(config.scheduling_latency);
  scale(config.queueing_latency);
  for (auto& ce : config.computing_elements) ce.local_latency.sigma *= sigma_scale;
  config.compute_noise_stddev *= sigma_scale;
  config.failure_probability *= sigma_scale;
  config.background_jobs_per_hour *= sigma_scale;
  return config;
}

}  // namespace

int main() {
  std::puts("=============================================================");
  std::puts("E7: overhead variability -> gain of SP on top of DP (S_SDP)");
  std::puts("    Bronze Standard, 30 image pairs, EGEE-like grid with the");
  std::puts("    variability knobs scaled by the factor below");
  std::puts("=============================================================");
  std::printf("  %10s | %12s %12s | %7s\n", "sigma x", "Sigma_DP (s)",
              "Sigma_DSP (s)", "S_SDP");

  const std::size_t n_pairs = 30;
  for (const double scale : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    const grid::GridConfig config = grid_with_sigma(scale);
    const double dp = run_bronze(config, enactor::EnactmentPolicy::dp(), n_pairs);
    const double dsp = run_bronze(config, enactor::EnactmentPolicy::sp_dp(), n_pairs);
    std::printf("  %10.2f | %12.0f %12.0f | %7.2f\n", scale, dp, dsp, dp / dsp);
  }

  std::puts("\n  At sigma x 0 the residual S_SDP above 1 comes from heterogeneous");
  std::puts("  node speeds and UI submission contention (T is still not constant");
  std::puts("  across jobs); the GROWTH of S_SDP with the variability scale is");
  std::puts("  the §3.5.4/§5.2 effect: service parallelism pays on top of data");
  std::puts("  parallelism exactly because production-grid times vary. At");
  std::puts("  EGEE-like variability the gain reaches the ~1.5-2.3 range the");
  std::puts("  paper reports (S_SDP in [1.90, 2.26]).");
  return 0;
}
