// A domain scenario beyond the paper's application: a cross-product
// parameter-sweep study — "the re-execution of a sequential code on
// different data sets" that the paper's introduction motivates. Every
// (subject, smoothing-scale) combination is processed by a real crest-point
// extraction; a synchronization barrier then aggregates the sweep into a
// recommendation of the best scale.
//
//   $ ./parameter_sweep
#include <cstdio>
#include <map>
#include <memory>

#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/threaded_backend.hpp"
#include "registration/crest.hpp"
#include "registration/phantom.hpp"
#include "services/functional_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace moteur;

struct SweepPoint {
  std::size_t subject = 0;
  std::size_t scale = 0;
  std::size_t points = 0;
  double mean_saliency = 0.0;
};

}  // namespace

int main() {
  // Synthetic subjects.
  constexpr std::size_t kSubjects = 4;
  registration::PhantomOptions phantom_options;
  phantom_options.size = 28;
  auto subjects = std::make_shared<std::vector<registration::Image3D>>();
  for (std::size_t s = 0; s < kSubjects; ++s) {
    Rng rng(900 + s);
    subjects->push_back(registration::make_phantom(rng, phantom_options));
  }

  // The workflow: subjects x scales -> extract -> aggregate (barrier) ->
  // sink. 'extract' iterates as a CROSS product over its two inputs.
  workflow::Workflow wf("parameter-sweep");
  wf.add_source("subjects");
  wf.add_source("scales");
  wf.add_processor("extract", {"subject", "scale"}, {"stats"},
                   workflow::IterationStrategy::kCross);
  auto& aggregate = wf.add_processor("aggregate", {"all"}, {"best"});
  aggregate.synchronization = true;
  wf.add_sink("recommendation");
  wf.link("subjects", "out", "extract", "subject");
  wf.link("scales", "out", "extract", "scale");
  wf.link("extract", "stats", "aggregate", "all");
  wf.link("aggregate", "best", "recommendation", "in");

  services::ServiceRegistry registry;
  registry.add(std::make_shared<services::FunctionalService>(
      "extract", std::vector<std::string>{"subject", "scale"},
      std::vector<std::string>{"stats"},
      [subjects](const services::Inputs& in) {
        SweepPoint point;
        point.subject = static_cast<std::size_t>(std::stoul(
            in.at("subject").as<std::string>()));
        point.scale = static_cast<std::size_t>(std::stoul(
            in.at("scale").as<std::string>()));
        registration::CrestOptions options;
        options.scale = point.scale;
        const auto points =
            registration::extract_crest_points((*subjects)[point.subject], options);
        point.points = points.size();
        for (const auto& p : points) point.mean_saliency += p.saliency;
        if (!points.empty()) point.mean_saliency /= static_cast<double>(points.size());
        services::Result result;
        result.outputs["stats"] = services::OutputValue{
            point, "subject" + std::to_string(point.subject) + "/scale" +
                       std::to_string(point.scale)};
        return result;
      }));

  registry.add(std::make_shared<services::FunctionalService>(
      "aggregate", std::vector<std::string>{"all"}, std::vector<std::string>{"best"},
      [](const services::Inputs& in) {
        // The whole sweep arrives at once (synchronization barrier).
        std::map<std::size_t, std::pair<double, std::size_t>> per_scale;  // sum, count
        for (const auto& token : in.at("all").as<std::vector<data::Token>>()) {
          const auto& point = token.as<SweepPoint>();
          per_scale[point.scale].first += point.mean_saliency;
          per_scale[point.scale].second += 1;
        }
        std::size_t best_scale = 0;
        double best_score = -1.0;
        std::string report;
        for (const auto& [scale, entry] : per_scale) {
          const double score = entry.first / static_cast<double>(entry.second);
          report += "scale " + std::to_string(scale) + ": mean saliency " +
                    std::to_string(score) + "\n";
          if (score > best_score) {
            best_score = score;
            best_scale = scale;
          }
        }
        services::Result result;
        result.outputs["best"] = services::OutputValue{
            report + "-> best scale: " + std::to_string(best_scale),
            "best=" + std::to_string(best_scale)};
        return result;
      }));

  data::InputDataSet inputs;
  for (std::size_t s = 0; s < kSubjects; ++s) {
    inputs.add_item("subjects", std::to_string(s));
  }
  for (const std::size_t scale : {1u, 2u, 3u}) {
    inputs.add_item("scales", std::to_string(scale));
  }

  enactor::ThreadedBackend backend;
  enactor::Enactor moteur(backend, registry, enactor::EnactmentPolicy::sp_dp());
  const auto result = moteur.run({.workflow = wf, .inputs = inputs});

  std::printf("sweep of %zu subjects x 3 scales -> %zu extract invocations"
              " (cross product), wall %.2f s\n\n",
              kSubjects, result.timeline.for_processor("extract").size(),
              result.makespan());
  std::fputs(result.sink_outputs.at("recommendation")
                 .at(0)
                 .as<std::string>()
                 .c_str(),
             stdout);
  std::puts("");
  return result.failures() == 0 ? 0 : 1;
}
