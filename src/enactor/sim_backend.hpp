#pragma once

#include "enactor/backend.hpp"
#include "grid/grid.hpp"

namespace moteur::enactor {

/// Runs invocations as jobs on the simulated EGEE infrastructure: each
/// execution submits the job described by the service's profile (batched
/// bindings sum their compute and transfer costs into one job, paying one
/// middleware overhead — the essence of grouping and batching), and the
/// service's synthesize_outputs() stands in for the payload results.
class SimGridBackend : public ExecutionBackend {
 public:
  explicit SimGridBackend(grid::Grid& grid) : grid_(grid) {}

  void execute(std::shared_ptr<services::Service> service,
               std::vector<services::Inputs> bindings, Callback on_complete) override;

  double now() const override { return grid_.simulator().now(); }

  bool drive(const std::function<bool()>& done) override;

  std::size_t jobs_submitted() const { return jobs_submitted_; }

 private:
  grid::Grid& grid_;
  std::size_t jobs_submitted_ = 0;
  std::size_t in_flight_ = 0;
};

}  // namespace moteur::enactor
