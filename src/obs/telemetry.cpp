#include "obs/telemetry.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/error.hpp"

namespace moteur::obs {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
  }
  return buf;
}

void append_labels(std::ostringstream& out, const Labels& labels) {
  out << "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "}";
}

}  // namespace

std::string telemetry_frame_json(const MetricsSnapshot& current,
                                 const MetricsSnapshot& delta,
                                 const std::vector<ShardSample>& shards,
                                 std::uint64_t seq) {
  std::ostringstream out;
  out << "{\"ts\":" << json_number(current.at) << ",\"seq\":" << seq
      << ",\"interval_seconds\":" << json_number(delta.interval) << ",\"metrics\":[";
  bool first_metric = true;
  for (const MetricsSnapshot::Family& family : current.families) {
    const MetricsSnapshot::Family* window = delta.find_family(family.name);
    for (const MetricsSnapshot::Series& series : family.series) {
      const MetricsSnapshot::Series* w =
          window ? [&]() -> const MetricsSnapshot::Series* {
            for (const MetricsSnapshot::Series& c : window->series) {
              if (c.labels == series.labels) return &c;
            }
            return nullptr;
          }()
                 : nullptr;
      if (!first_metric) out << ",";
      first_metric = false;
      out << "{\"name\":\"" << json_escape(family.name) << "\",\"type\":\""
          << to_string(family.type) << "\",";
      append_labels(out, series.labels);
      switch (family.type) {
        case MetricType::kCounter: {
          const double d = w ? w->value : 0.0;
          out << ",\"value\":" << json_number(series.value)
              << ",\"delta\":" << json_number(d)
              << ",\"rate\":" << json_number(w ? delta.rate(*w) : 0.0);
          break;
        }
        case MetricType::kGauge:
          out << ",\"value\":" << json_number(series.value)
              << ",\"max\":" << json_number(series.max_seen);
          break;
        case MetricType::kHistogram: {
          out << ",\"count\":" << series.count
              << ",\"sum\":" << json_number(series.sum)
              << ",\"delta_count\":" << (w ? w->count : 0)
              << ",\"delta_sum\":" << json_number(w ? w->sum : 0.0);
          const MetricsSnapshot::Series& q = w ? *w : series;
          out << ",\"window_p50\":"
              << json_number(bucket_percentile(q.bounds, q.buckets, 50.0))
              << ",\"window_p95\":"
              << json_number(bucket_percentile(q.bounds, q.buckets, 95.0))
              << ",\"window_p99\":"
              << json_number(bucket_percentile(q.bounds, q.buckets, 99.0));
          break;
        }
      }
      out << "}";
    }
  }
  out << "],\"shards\":[";
  bool first_shard = true;
  for (const ShardSample& shard : shards) {
    if (!first_shard) out << ",";
    first_shard = false;
    out << "{\"shard\":" << shard.shard << ",\"runs\":" << shard.runs
        << ",\"invocations\":" << shard.invocations
        << ",\"active\":" << json_number(shard.active)
        << ",\"queued\":" << json_number(shard.queued) << "}";
  }
  out << "]}";
  return out.str();
}

TelemetryHub::TelemetryHub(Config config, SnapshotFn snapshot, ScrapeFn scrape,
                           ShardsFn shards)
    : config_(std::move(config)),
      snapshot_(std::move(snapshot)),
      scrape_(std::move(scrape)),
      shards_(std::move(shards)) {}

TelemetryHub::~TelemetryHub() { stop(); }

void TelemetryHub::start() {
  MOTEUR_REQUIRE(!running_, Error, "telemetry hub already started");
  MOTEUR_REQUIRE(config_.interval_seconds > 0.0, Error,
                 "telemetry interval must be positive");
  if (!config_.jsonl_path.empty()) {
    jsonl_.open(config_.jsonl_path, std::ios::trunc);
    MOTEUR_REQUIRE(jsonl_.is_open(), Error,
                   "cannot open telemetry frame file '" + config_.jsonl_path + "'");
  }
  if (config_.scrape_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MOTEUR_REQUIRE(listen_fd_ >= 0, Error, "telemetry scrape socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.scrape_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      const std::string why = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      MOTEUR_REQUIRE(false, Error,
                     "cannot bind telemetry scrape endpoint on 127.0.0.1:" +
                         std::to_string(config_.scrape_port) + ": " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      port_.store(static_cast<int>(ntohs(bound.sin_port)));
    }
  }
  stop_requested_ = false;
  running_ = true;
  tick();  // frame 0: even a run shorter than one interval leaves evidence
  sampler_ = std::thread([this] { sampler_loop(); });
  if (listen_fd_ >= 0) acceptor_ = std::thread([this] { accept_loop(); });
}

void TelemetryHub::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (sampler_.joinable()) sampler_.join();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  tick();  // final frame: the post-run totals always land in the stream
  if (jsonl_.is_open()) jsonl_.close();
  running_ = false;
}

void TelemetryHub::sampler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto wait = std::chrono::duration<double>(config_.interval_seconds);
    if (cv_.wait_for(lock, wait, [this] { return stop_requested_; })) break;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void TelemetryHub::tick() {
  MetricsSnapshot current = snapshot_ ? snapshot_() : MetricsSnapshot{};
  current.at = wall_now();
  const MetricsSnapshot delta =
      have_previous_ ? current.delta_since(previous_) : current;
  const std::vector<ShardSample> shards =
      shards_ ? shards_() : std::vector<ShardSample>{};
  if (jsonl_.is_open()) {
    jsonl_ << telemetry_frame_json(current, delta, shards, seq_) << "\n";
    jsonl_.flush();
  }
  ++seq_;
  frames_.fetch_add(1);
  previous_ = std::move(current);
  have_previous_ = true;
}

void TelemetryHub::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() from stop(), or a fatal socket error
    }
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Read the request head (we only need the request line).
    std::string head;
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      head.append(buf, static_cast<std::size_t>(n));
    }
    std::string path = "/";
    const std::size_t sp1 = head.find(' ');
    if (sp1 != std::string::npos) {
      const std::size_t sp2 = head.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) path = head.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    std::string status = "200 OK";
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::string body;
    if (path == "/metrics" || path == "/") {
      body = scrape_ ? scrape_() : "";
      scrapes_.fetch_add(1);
    } else {
      status = "404 Not Found";
      content_type = "text/plain; charset=utf-8";
      body = "only /metrics is served here\n";
    }
    std::ostringstream response;
    response << "HTTP/1.1 " << status << "\r\n"
             << "Content-Type: " << content_type << "\r\n"
             << "Content-Length: " << body.size() << "\r\n"
             << "Connection: close\r\n\r\n"
             << body;
    const std::string out = response.str();
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

}  // namespace moteur::obs
