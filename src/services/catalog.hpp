#pragma once

#include <string>
#include <vector>

#include "services/functional_service.hpp"
#include "services/registry.hpp"

namespace moteur::services {

/// One entry of a simulated-service catalog.
struct CatalogEntry {
  std::string id;
  std::vector<std::string> input_ports;
  std::vector<std::string> output_ports;
  JobProfile profile;
};

/// XML catalog of simulated services, so that whole simulation studies can
/// be described in documents (workflow + data set + service catalog) with no
/// code — the moteur_cli tool consumes all three.
///
///   <services>
///     <service id="crestLines" compute="90" inputMB="15.6" outputMB="3.9">
///       <input name="im1"/> <input name="im2"/> <input name="s"/>
///       <output name="c1"/> <output name="c2"/>
///     </service>
///     ...
///   </services>
///
/// `compute` is seconds of payload on a reference node; `inputMB`/`outputMB`
/// default to 0.
std::string to_catalog_xml(const std::vector<CatalogEntry>& entries);

/// Parse a catalog document. Throws ParseError on malformed input
/// (duplicate ids, missing attributes, non-numeric costs).
std::vector<CatalogEntry> parse_catalog(const std::string& xml_text);

/// Parse a catalog and register one simulated service per entry (replacing
/// same-id registrations). Returns the number of services registered.
std::size_t load_catalog(const std::string& xml_text, ServiceRegistry& registry);

}  // namespace moteur::services
