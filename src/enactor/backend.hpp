#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "grid/job.hpp"
#include "services/service.hpp"

namespace moteur::data {
class ReplicaCatalog;
}  // namespace moteur::data

namespace moteur::grid {
class CeHealth;
}  // namespace moteur::grid

namespace moteur::obs {
class MetricsRegistry;
struct RunEvent;
}  // namespace moteur::obs

namespace moteur::enactor {

/// How one backend execution ended, from the enactor's point of view. The
/// taxonomy follows the standard grid fault-tolerance classification
/// (task-level retry/resubmission): transient faults are worth resubmitting,
/// definitive ones are not, and timeouts are synthesized by the enactor's
/// resubmission watchdog rather than reported by a backend.
enum class OutcomeStatus {
  kOk,          // all bindings produced results
  kTransient,   // middleware/site fault; a resubmission may succeed
  kDefinitive,  // semantic failure; retrying cannot help
  kTimedOut,    // no completion before the resubmission deadline
  kSkipped,     // never executed: an input token was poisoned upstream
  kCached,      // served from the invocation cache; no grid job submitted
  kDataLost,    // an input file has no surviving replica; resubmission
                // cannot help, only lineage recovery (re-derivation) can
};

const char* to_string(OutcomeStatus s);

/// Outcome of one backend execution (possibly covering several batched
/// input bindings submitted as a single unit of work).
struct Outcome {
  OutcomeStatus status = OutcomeStatus::kOk;
  std::string error;
  /// One result per submitted binding, aligned with the submission order.
  /// Empty unless status == kOk.
  std::vector<services::Result> results;
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  std::optional<grid::JobRecord> job;
  /// Logical names with no surviving replica (status == kDataLost).
  std::vector<std::string> lost_files;

  bool ok() const { return status == OutcomeStatus::kOk; }
  /// Whether the enactor's retry policy may resubmit after this outcome.
  bool retryable() const {
    return status == OutcomeStatus::kTransient || status == OutcomeStatus::kTimedOut;
  }

  static Outcome success(std::vector<services::Result> results) {
    Outcome o;
    o.results = std::move(results);
    return o;
  }
  static Outcome failure(OutcomeStatus status, std::string error) {
    Outcome o;
    o.status = status;
    o.error = std::move(error);
    return o;
  }
};

/// Per-execution policy hints attached by the enactor: which matchmaking
/// policy should rank CEs for this unit of work, which placement policy
/// produced the avoid set (for decision accounting), and the CE names the
/// placement policy wants this attempt steered away from. All advisory —
/// backends without routing freedom ignore them, and the default execute()
/// overload drops them entirely.
struct ExecOptions {
  std::string matchmaking;
  std::string placement;
  std::vector<std::string> avoid_ces;
};

/// Where service invocations actually run. The enactor core is event-driven
/// and single-threaded; backends deliver completions by invoking the
/// callback from within drive().
class ExecutionBackend {
 public:
  using Callback = std::function<void(Outcome)>;
  /// Handle of a timer armed with schedule(); usable to cancel it.
  using TimerId = std::uint64_t;

  virtual ~ExecutionBackend() = default;

  /// Execute `bindings.size()` invocations of `service` as one unit of work
  /// (one grid job / one worker-thread task). `bindings` must not be empty.
  /// The callback fires exactly once, from within drive().
  virtual void execute(std::shared_ptr<services::Service> service,
                       std::vector<services::Inputs> bindings, Callback on_complete) = 0;

  /// Execute with policy hints. Backends that can act on them (the simulated
  /// grid) override this; the default forwards to the plain overload, so
  /// hint-unaware backends behave exactly as before.
  virtual void execute(std::shared_ptr<services::Service> service,
                       std::vector<services::Inputs> bindings, ExecOptions options,
                       Callback on_complete) {
    (void)options;
    execute(std::move(service), std::move(bindings), std::move(on_complete));
  }

  /// Current backend time in seconds.
  virtual double now() const = 0;

  /// Arm a timer: `fn` runs `delay_seconds` of backend time from now, from
  /// within drive() — the enactor's resubmission watchdogs and backoff
  /// delays. Live (un-cancelled, un-fired) timers count as pending work for
  /// drive()'s stall detection.
  virtual TimerId schedule(double delay_seconds, std::function<void()> fn) = 0;

  /// Cancel a timer armed with schedule(). Cancelling an already-fired or
  /// unknown timer is a no-op.
  virtual void cancel(TimerId id) = 0;

  /// Dispatch completions and timers until `done()` returns true. Returns
  /// false if the backend ran out of work (no pending executions or live
  /// timers) before done() held — the enactor treats that as a stall and
  /// attempts feedback closure.
  virtual bool drive(const std::function<bool()>& done) = 0;

  /// Optional sink for backend-level metrics (job/task tallies, backend
  /// queue waits). Set it before enacting; the backend records only from
  /// within drive(), so the registry needs no locking. Default: record
  /// nothing.
  virtual void set_metrics(obs::MetricsRegistry* metrics) { (void)metrics; }

  /// Optional sink for backend-originated observability events (SE→SE
  /// transfer start/completion). These are service-scope events (empty
  /// run_id): a transfer can serve invocations of many concurrent runs, so
  /// they cannot be attributed to one. Delivered from within drive();
  /// nullptr (the default) detaches. Default: drop them.
  virtual void set_event_sink(std::function<void(const obs::RunEvent&)> sink) {
    (void)sink;
  }

  /// Optional per-CE health ledger with circuit breakers: backends that can
  /// route work across sites consult it to steer submissions away from open
  /// breakers. Set before enacting; nullptr detaches (every attached ledger).
  /// Default: ignore.
  virtual void set_health(grid::CeHealth* health) { (void)health; }

  /// Attach one more health ledger without displacing those already
  /// attached: routing excludes a CE when ANY attached ledger vetoes it.
  /// Lets a run-owned ledger coexist with a service-owned one. Default maps
  /// onto set_health (single-ledger backends).
  virtual void add_health(grid::CeHealth* health) { set_health(health); }

  /// Detach exactly `health`, leaving other attached ledgers in place.
  /// Default maps onto set_health(nullptr).
  virtual void remove_health(grid::CeHealth* health) {
    (void)health;
    set_health(nullptr);
  }

  /// Thread-safe wake-up: interrupt a drive() blocked waiting for work so
  /// its done() predicate is re-evaluated. The only ExecutionBackend entry
  /// point that may be called from another thread — RunService uses it to
  /// push new runs and cancellations into a live drive loop. Backends whose
  /// drive() re-checks done() continuously (the simulated grid steps events
  /// in a tight loop) may keep the default no-op.
  virtual void notify() {}

  /// The replica catalog backing this backend's data plane, when it has
  /// one — the enactor consults it to validate cached outputs and to drive
  /// lineage recovery. Default: no data plane.
  virtual data::ReplicaCatalog* catalog() const { return nullptr; }

  /// Open an independent completion channel: a backend view with its own
  /// completion queue, timer wheel, and drive() loop, so several engine
  /// shards can each run their own event loop against one shared execution
  /// substrate. Work submitted through a channel completes on THAT channel's
  /// drive() thread; channels share the backend's workers, routing state,
  /// and clock. Each channel is driven by exactly one thread; the channel
  /// must not outlive its parent. Returns nullptr when the backend cannot be
  /// multi-driven (the single-threaded simulator) — callers then fall back
  /// to one shard driving the backend directly.
  virtual std::unique_ptr<ExecutionBackend> make_channel() { return nullptr; }
};

}  // namespace moteur::enactor
