#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "enactor/policy.hpp"
#include "grid/config.hpp"
#include "workflow/graph.hpp"
#include "xml/xml.hpp"

namespace moteur::enactor {

/// A complete, re-executable description of one enactment: workflow,
/// input data set, policy and grid preset — the paper's motivation for its
/// data-set format ("to be able to re-execute workflows on the same data
/// set", §4.1) extended to the whole run. Serializes to a single XML
/// document consumed by moteur_cli.
struct RunManifest {
  workflow::Workflow workflow{"empty"};
  data::InputDataSet inputs;
  EnactmentPolicy policy;

  /// One of "egee2006", "cluster", "constant".
  std::string grid_preset = "egee2006";
  /// Parameters of the presets.
  std::uint64_t seed = 20060619;
  double constant_overhead_seconds = 600.0;  // preset "constant"
  std::size_t cluster_nodes = 64;            // preset "cluster"
  /// Finite orchestrator/UI link capacity every centralized stage shares
  /// (<grid orchestratorBw="..."/>); 0 keeps the link unlimited (bypassed).
  double orchestrator_bandwidth_mbps = 0.0;

  /// Enactment-core sharding for services replaying this manifest
  /// (<service shards=".." pinPolicy="hash|least-loaded"/>). Kept as plain
  /// data here — the service layer (which sits above the enactor) parses
  /// pin_policy into its PinPolicy enum.
  std::size_t shards = 1;
  std::string pin_policy = "hash";

  /// Build the configured grid.
  grid::GridConfig make_grid_config() const;

  std::string to_xml() const;
  static RunManifest from_xml(const std::string& text);
};

/// Policy <-> XML element, e.g.
/// <policy config="SP+DP" batch="1" adaptiveBatching="false" cap="0"/>.
void write_policy(xml::Node& node, const EnactmentPolicy& policy);
EnactmentPolicy read_policy(const xml::Node& node);

}  // namespace moteur::enactor
