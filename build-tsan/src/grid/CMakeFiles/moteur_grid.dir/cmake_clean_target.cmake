file(REMOVE_RECURSE
  "libmoteur_grid.a"
)
