#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace moteur::grid {

/// Circuit-breaker configuration for per-CE health tracking. The rolling
/// window counts the most recent attempt outcomes of each computing element;
/// once `threshold` of the last `window` attempts failed, the breaker opens
/// and routing avoids the site until `cooldown_seconds` have passed, after
/// which a single half-open probe decides whether it rejoins.
struct BreakerPolicy {
  bool enabled = false;
  /// Rolling window of attempt outcomes kept per CE.
  std::size_t window = 8;
  /// Failures within the window that open the breaker.
  std::size_t threshold = 4;
  /// Seconds an open breaker cools down before admitting a probe.
  double cooldown_seconds = 1800.0;
};

/// Breaker state of one computing element.
///  - Closed:   healthy, submissions route normally;
///  - Open:     failing, submissions route elsewhere until the cooldown ends;
///  - HalfOpen: one probe submission is out; its outcome closes or reopens.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState s);

/// Per-CE health ledger with a circuit breaker per computing element.
/// Thread-safe: a RunService shares one ledger across every engine shard, so
/// queries and outcome recording may arrive from several shard threads at
/// once; an internal mutex serializes them (uncontended in the historical
/// single-worker setup). Transition/reroute listeners fire with the lock
/// held — they must not call back into the ledger.
///
/// A straggler completing after its breaker opened only updates the ledger
/// through the half-open decision: outcomes recorded while the breaker is
/// open are ignored, so stale attempts from before the trip cannot flap the
/// state.
class CeHealth {
 public:
  struct Transition {
    std::string computing_element;
    BreakerState from = BreakerState::kClosed;
    BreakerState to = BreakerState::kClosed;
    double time = 0.0;
    /// Failures in the rolling window when the transition happened.
    std::size_t failures_in_window = 0;
  };
  using TransitionListener = std::function<void(const Transition&)>;
  /// A routing decision excluded at least one open CE.
  using RerouteListener = std::function<void(double time)>;

  explicit CeHealth(BreakerPolicy policy);

  const BreakerPolicy& policy() const { return policy_; }

  void set_transition_listener(TransitionListener listener);
  void set_reroute_listener(RerouteListener listener);

  /// Record the outcome of one attempt that ran on `ce` at backend time
  /// `now`. Drives Closed -> Open (threshold reached) and the half-open
  /// probe decision (HalfOpen -> Closed on success, -> Open on failure).
  void record(const std::string& ce, bool success, double now);

  /// Whether a new submission may be routed to `ce` right now: closed
  /// breakers always admit, open ones only once their cooldown has elapsed
  /// (the would-be probe), half-open ones never (the probe is already out).
  /// Pure query — commit a routing decision with on_routed().
  bool admissible(const std::string& ce, double now) const;

  /// Commit a routing decision: a submission is actually going to `ce`.
  /// Turns an admissible open breaker into HalfOpen (its probe is now out).
  void on_routed(const std::string& ce, double now);

  /// Routing excluded at least one open CE for this submission.
  void note_rerouted(double now);

  BreakerState state(const std::string& ce) const;
  std::size_t open_breakers() const;

  std::size_t opens() const;
  std::size_t closes() const;
  std::size_t probes() const;
  std::size_t reroutes() const;

 private:
  struct Entry {
    BreakerState state = BreakerState::kClosed;
    std::deque<bool> window;  // true = the attempt failed
    std::size_t failures = 0;
    double opened_at = 0.0;
  };

  Entry& entry(const std::string& ce) { return entries_[ce]; }
  void transition(const std::string& ce, Entry& e, BreakerState to, double now);

  mutable std::mutex mu_;
  BreakerPolicy policy_;
  std::map<std::string, Entry> entries_;
  TransitionListener on_transition_;
  RerouteListener on_reroute_;
  std::size_t opens_ = 0;
  std::size_t closes_ = 0;
  std::size_t probes_ = 0;
  std::size_t reroutes_ = 0;
};

}  // namespace moteur::grid
