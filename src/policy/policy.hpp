#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace moteur::policy {

/// Flat snapshot of one computing element at match instant. Policies see
/// plain names and numbers — never grid types — so this layer stays below
/// grid/enactor/service in the dependency order and all three can link it.
struct CeCandidate {
  std::string name;
  double queue_rank = 0.0;        ///< broker queue-based response estimate
  double stage_in_seconds = 0.0;  ///< estimated input staging cost (0 when blind)
};

/// Ranks admissible computing elements during brokering.
class MatchmakingPolicy {
 public:
  virtual ~MatchmakingPolicy() = default;
  virtual const std::string& name() const = 0;

  /// True when the policy ranks on stage-in estimates, so the grid builds an
  /// estimator for it even without the global data-aware matchmaking flag.
  virtual bool wants_stage_in() const { return false; }

  /// Pick the index of the winning candidate (candidates is never empty).
  /// `tie_rng` is the broker's historical tie-break stream: draw from it
  /// ONLY to break exact rank ties, so the default policy replays the
  /// pre-policy-engine draw sequence bit for bit. Policies needing their
  /// own randomness must carry a private substream instead.
  virtual std::size_t choose(const std::vector<CeCandidate>& candidates,
                             Rng& tie_rng) = 0;
};

/// Inputs to a retry/speculative-clone placement decision.
struct PlacementContext {
  std::size_t attempt = 1;  ///< 1-based attempt number about to start
  bool speculative = false;
  /// CE names earlier attempts of this submission landed on, oldest first.
  const std::vector<std::string>* tried_ces = nullptr;
};

/// Chooses where retries and speculative clones should (not) land.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const std::string& name() const = 0;

  /// CE names the broker should steer this attempt away from. Advisory:
  /// when the avoid set covers every admissible CE the broker falls back
  /// to the full set rather than stranding the submission.
  virtual std::vector<std::string> avoid(const PlacementContext& ctx) = 0;
};

/// Governs replica placement on registration and probe preference on read.
class ReplicaPolicy {
 public:
  virtual ~ReplicaPolicy() = default;
  virtual const std::string& name() const = 0;

  /// SEs a fresh replica should be registered on. `close_se` is the
  /// producing CE's close SE; `all_ses` lists every SE in deterministic
  /// (registration) order.
  virtual std::vector<std::string> placement_targets(
      const std::string& close_se, const std::vector<std::string>& all_ses) = 0;

  /// Reorder replica-holding SEs in place into stage-in probe preference
  /// order (first entry probed first, later entries are failover targets).
  virtual void probe_order(std::vector<std::string>& candidates,
                           const std::string& close_se) = 0;
};

/// Governs third-party SE→SE replication: whether remote reads are routed
/// peer-to-peer instead of through the orchestrator, and which transfers
/// the grid should start proactively.
class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;
  virtual const std::string& name() const = 0;

  /// True when remote stage-ins flow SE→SE instead of round-tripping
  /// through the orchestrator/UI link. `none` keeps the centralized
  /// baseline (bit-identical to the pre-refactor data path).
  virtual bool decentralized_reads() const { return false; }

  /// True when the broker should push missing inputs toward the matched
  /// CE's close SE at match time, overlapping replication with queueing.
  virtual bool push_on_match() const { return false; }

  /// SEs a freshly registered replica should be pushed to in the
  /// background. `source_se` holds the new replica; `all_ses` lists every
  /// SE in deterministic (registration) order.
  virtual std::vector<std::string> fanout_targets(
      const std::string& source_se, const std::vector<std::string>& all_ses) {
    (void)source_se;
    (void)all_ses;
    return {};
  }
};

/// One replica resident on a capacity-bounded SE, as seen by an eviction
/// decision. `last_use` is the catalog's logical touch counter (higher =
/// more recently used); `pinned` marks workflow source files.
struct ReplicaResidency {
  std::string lfn;
  double size_mb = 0.0;
  bool pinned = false;
  std::uint64_t last_use = 0;
};

/// Picks which resident replicas a capacity-bounded SE should drop to make
/// room for a new registration.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual const std::string& name() const = 0;

  /// LFNs to evict, in eviction order, to free at least `need_mb`. May
  /// return fewer (the catalog then over-commits rather than rejecting
  /// the incoming replica). `resident` is in deterministic catalog order.
  virtual std::vector<std::string> victims(
      const std::vector<ReplicaResidency>& resident, double need_mb) = 0;
};

/// Maps a run's requested weight onto the effective weighted-round-robin
/// share the admission gate grants per visit.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual const std::string& name() const = 0;

  /// Effective WRR weight for `run_id` given the weight it asked for.
  /// The gate clamps a returned 0 to 1.
  virtual std::size_t weight(const std::string& run_id, std::size_t requested) = 0;
};

}  // namespace moteur::policy
