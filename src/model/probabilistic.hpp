#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "model/makespan.hpp"

namespace moteur::model {

/// Probabilistic extension of the §3.5 model (the "probabilistic modeling
/// considering the variable nature of the grid" the paper proposes as future
/// work, §5.4, ref [12]): instead of constant T, per-(service, data) times
/// are random. Expected makespans are estimated by Monte-Carlo over the
/// exact formulas, plus a closed-form approximation for the DP case.

/// Draws one T_ij. Called nW * nD times per trial.
using DurationSampler = std::function<double(std::size_t service, std::size_t data)>;

struct MonteCarloEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t trials = 0;
};

/// Estimate E[Sigma_policy] for each policy by resampling the time matrix.
MonteCarloEstimate expected_sigma_sequential(std::size_t n_w, std::size_t n_d,
                                             const DurationSampler& sampler,
                                             std::size_t trials);
MonteCarloEstimate expected_sigma_dp(std::size_t n_w, std::size_t n_d,
                                     const DurationSampler& sampler, std::size_t trials);
MonteCarloEstimate expected_sigma_sp(std::size_t n_w, std::size_t n_d,
                                     const DurationSampler& sampler, std::size_t trials);
MonteCarloEstimate expected_sigma_dsp(std::size_t n_w, std::size_t n_d,
                                      const DurationSampler& sampler, std::size_t trials);

/// Inverse standard-normal CDF (Acklam's rational approximation, |error| <
/// 1.15e-9). Used by the closed-form extreme-value approximations.
double inverse_normal_cdf(double p);

/// Closed-form approximation of E[max of n i.i.d. Lognormal(mu, sigma)]
/// using the expected-quantile heuristic E[max_n] ~ quantile(n/(n+1)).
double expected_max_lognormal(std::size_t n, double mu, double sigma);

/// Approximate E[Sigma_DP] when every T_ij ~ Lognormal(mu, sigma) i.i.d.:
/// nW * E[max over nD draws]. Exposes why DP's measured speed-up falls short
/// of the deterministic prediction S_DP = nD on a variable grid (§5.2).
double approx_sigma_dp_lognormal(std::size_t n_w, std::size_t n_d, double mu,
                                 double sigma);

/// Approximate E[Sigma_DSP]: max over nD of per-pipeline sums, treating each
/// sum as normal by CLT (moment matching of the lognormal components).
double approx_sigma_dsp_lognormal(std::size_t n_w, std::size_t n_d, double mu,
                                  double sigma);

}  // namespace moteur::model
