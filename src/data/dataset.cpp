#include "data/dataset.hpp"

#include "util/error.hpp"
#include "xml/xml.hpp"

namespace moteur::data {

InputDataSet::Input* InputDataSet::find(const std::string& name) {
  for (auto& input : inputs_) {
    if (input.name == name) return &input;
  }
  return nullptr;
}

const InputDataSet::Input* InputDataSet::find(const std::string& name) const {
  for (const auto& input : inputs_) {
    if (input.name == name) return &input;
  }
  return nullptr;
}

void InputDataSet::add_item(const std::string& input_name, std::string value) {
  declare_input(input_name);
  find(input_name)->items.push_back(std::move(value));
}

void InputDataSet::declare_input(const std::string& input_name) {
  if (find(input_name) == nullptr) {
    inputs_.push_back(Input{input_name, {}});
  }
}

std::vector<std::string> InputDataSet::input_names() const {
  std::vector<std::string> names;
  names.reserve(inputs_.size());
  for (const auto& input : inputs_) names.push_back(input.name);
  return names;
}

bool InputDataSet::has_input(const std::string& input_name) const {
  return find(input_name) != nullptr;
}

const std::vector<std::string>& InputDataSet::items(const std::string& input_name) const {
  const Input* input = find(input_name);
  MOTEUR_REQUIRE(input != nullptr, ParseError,
                 "data set has no input named '" + input_name + "'");
  return input->items;
}

std::size_t InputDataSet::item_count(const std::string& input_name) const {
  const Input* input = find(input_name);
  return input == nullptr ? 0 : input->items.size();
}

std::string InputDataSet::to_xml() const {
  auto root = std::make_unique<xml::Node>("dataset");
  for (const auto& input : inputs_) {
    auto& input_node = root->add_child("input");
    input_node.set_attribute("name", input.name);
    for (const auto& item : input.items) {
      input_node.add_child("item").set_attribute("value", item);
    }
  }
  return xml::Document(std::move(root)).to_string();
}

InputDataSet InputDataSet::from_xml(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  MOTEUR_REQUIRE(doc.root().name() == "dataset", ParseError,
                 "expected <dataset> root, got <" + doc.root().name() + ">");
  InputDataSet out;
  for (const xml::Node* input_node : doc.root().children_named("input")) {
    const std::string name = input_node->required_attribute("name");
    MOTEUR_REQUIRE(!out.has_input(name), ParseError,
                   "duplicate <input name=\"" + name + "\"> in data set");
    out.inputs_.push_back(Input{name, {}});
    for (const xml::Node* item : input_node->children_named("item")) {
      out.inputs_.back().items.push_back(item->required_attribute("value"));
    }
  }
  return out;
}

}  // namespace moteur::data
