// E16 (fault-containment extension) — graceful degradation under flaky
// sites: a third of the EGEE sites fail attempts with probability p, the
// grid's own retry is disabled, and the enactor resubmits up to 4 times.
// Sweeps p x {breaker off, on} x {failfast, continue} on the Bronze
// Standard and reports mean makespan (over seeds) and the fraction of
// invocations completed. The per-CE circuit breaker routes submissions away
// from the flaky sites after a handful of failures, so at p >= 0.2 its
// makespan must not exceed the breakerless run; FailurePolicy::kContinue
// additionally turns definitive losses into partial results (downstream
// skipped, not aborted) instead of lost-only stats.
#include <cstdio>
#include <cstddef>

#include "app/bronze_standard.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/ce_health.hpp"
#include "grid/grid.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace moteur;

struct Row {
  double makespan = 0.0;
  std::size_t completed = 0;  // invocations that produced their outputs
  std::size_t lost = 0;
  std::size_t skipped = 0;
  std::size_t breaker_opens = 0;

  double completed_fraction() const {
    const std::size_t total = completed + lost + skipped;
    return total == 0 ? 0.0
                      : static_cast<double>(completed) / static_cast<double>(total);
  }
};

Row run_once(double failure_probability, bool breaker_on,
             enactor::FailurePolicy failure_policy, std::size_t n_pairs,
             std::uint64_t seed) {
  sim::Simulator simulator;
  auto config = grid::GridConfig::egee2006(seed);
  // Every third site is flaky; the rest stay clean, so routing away pays.
  for (std::size_t i = 0; i < config.computing_elements.size(); i += 3) {
    config.computing_elements[i].failure_probability = failure_probability;
  }
  config.max_attempts = 1;  // failures surface to the enactor
  // A failure is only detected when the job would have finished (the
  // paper's D0 example): every attempt burnt on a flaky site costs its
  // full payload, which is what the breaker saves.
  config.failure_detection_fraction = 1.0;
  grid::Grid grid(simulator, config);
  enactor::SimGridBackend backend(grid);

  services::ServiceRegistry registry;
  app::register_simulated_services(registry);

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.retry = enactor::RetryPolicy::resubmit(4);
  policy.failure_policy = failure_policy;
  if (breaker_on) {
    policy.breaker.enabled = true;
    policy.breaker.window = 6;
    policy.breaker.threshold = 3;
    policy.breaker.cooldown_seconds = 7200.0;
  }
  enactor::Enactor moteur(backend, registry, policy);

  const auto result = moteur.run({.workflow = app::bronze_standard_workflow(),
                                  .inputs = app::bronze_standard_dataset(n_pairs)});
  Row row;
  row.makespan = result.makespan();
  row.completed = result.invocations();
  row.lost = result.failures();
  row.skipped = result.skipped();
  for (const auto& t : result.timeline.breaker_transitions()) {
    if (t.to == grid::BreakerState::kOpen) ++row.breaker_opens;
  }
  return row;
}

}  // namespace

int main() {
  std::puts("==================================================================");
  std::puts("E16: graceful degradation under flaky sites (per-CE breakers)");
  std::puts("     Bronze Standard, 12 pairs, SP+DP, 1/3 of sites flaky,");
  std::puts("     enactor resubmit(4), grid retry disabled, 5 seeds per cell");
  std::puts("==================================================================");

  const std::size_t n_pairs = 12;
  const std::uint64_t seed = 20060619;

  constexpr std::size_t kSeeds = 5;  // average out single-draw wobble

  const Row clean =
      run_once(0.0, false, enactor::FailurePolicy::kFailFast, n_pairs, seed);
  std::printf("clean run: makespan %.0f s, %zu invocations\n\n", clean.makespan,
              clean.completed);

  std::printf("  %7s %8s %9s | %12s %15s %6s %8s %6s\n", "p(fail)", "breaker",
              "policy", "makespan (s)", "completed", "lost", "skipped", "opens");
  for (const double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    for (const bool breaker_on : {false, true}) {
      for (const auto policy : {enactor::FailurePolicy::kFailFast,
                                enactor::FailurePolicy::kContinue}) {
        double makespan = 0.0, fraction = 0.0;
        std::size_t completed = 0, lost = 0, skipped = 0, opens = 0;
        for (std::size_t k = 0; k < kSeeds; ++k) {
          const Row row = run_once(p, breaker_on, policy, n_pairs, seed + k);
          makespan += row.makespan;
          fraction += row.completed_fraction();
          completed += row.completed;
          lost += row.lost;
          skipped += row.skipped;
          opens += row.breaker_opens;
        }
        std::printf("  %7.2f %8s %9s | %12.0f %8zu (%3.0f%%) %6zu %8zu %6zu\n", p,
                    breaker_on ? "on" : "off", to_string(policy),
                    makespan / kSeeds, completed,
                    100.0 * fraction / kSeeds, lost, skipped, opens);
      }
    }
    std::puts("");
  }
  std::puts("The breaker trips the flaky third of the grid after a couple of");
  std::puts("failures, so submissions stop burning retries there: at p >= 0.2 the");
  std::puts("breaker makespan stays at or below the breakerless one. `continue`");
  std::puts("turns residual definitive losses into partial results: downstream");
  std::puts("stages are skipped (not aborted) and the completed fraction degrades");
  std::puts("gracefully instead of the whole run failing.");
  return 0;
}
