#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/bronze_standard.hpp"
#include "enactor/policy.hpp"
#include "grid/config.hpp"
#include "model/metrics.hpp"

namespace moteur::app {

/// One (configuration, input-size) cell of the paper's evaluation.
struct RunOutcome {
  std::string configuration;   // "NOP", "DP", "SP+DP+JG", ...
  std::size_t n_pairs = 0;
  double makespan_seconds = 0.0;
  std::size_t jobs_submitted = 0;   // backend submissions (grouping reduces this)
  std::size_t invocations = 0;      // logical service invocations
  std::size_t failures = 0;
  double mean_job_overhead = 0.0;   // grid overhead per job, seconds
};

/// The paper's §4.4 experimental design: the Bronze-Standard workflow run on
/// the simulated EGEE infrastructure for every optimization configuration
/// and input size.
struct ExperimentOptions {
  std::vector<std::size_t> sizes = {12, 66, 126};
  std::vector<std::string> configurations = {"NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"};
  std::uint64_t seed = 20060619;
  /// Independent grid realizations averaged per cell. The paper submitted
  /// each (configuration, size) once; averaging a few seeds keeps the
  /// reproduced tables stable at small sizes.
  std::size_t replicas = 3;
  BronzeProfiles profiles = {};
  /// Grid preset builder, invoked with the experiment seed per run so every
  /// configuration sees identical stochastic conditions (paired design).
  grid::GridConfig (*grid_preset)(std::uint64_t) = &grid::GridConfig::egee2006;
};

/// Run one cell.
RunOutcome run_bronze_once(const enactor::EnactmentPolicy& policy, std::size_t n_pairs,
                           const ExperimentOptions& options);

/// The full sweep.
struct ExperimentTable {
  std::vector<RunOutcome> rows;

  const RunOutcome& cell(const std::string& configuration, std::size_t n_pairs) const;

  /// Time-vs-size series of one configuration (for regression metrics).
  model::Series series(const std::string& configuration) const;

  /// Render the Table-1 layout (configurations x sizes, seconds).
  std::string render_table1() const;

  /// Render the Figure-10 data (size, one column per configuration, hours).
  std::string render_figure10() const;
};

ExperimentTable run_bronze_experiment(const ExperimentOptions& options = {});

}  // namespace moteur::app
