#include "service/shard.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace moteur::service {

using detail::RunRecord;
using detail::ServiceCore;

namespace {

/// Per-run view of the shard's backend: submissions detour through the
/// shard's admission gate (stamped with the run id for fair-share
/// scheduling); time, timers, and everything else go straight through.
class GatedBackend final : public enactor::ExecutionBackend {
 public:
  GatedBackend(enactor::ExecutionBackend& inner, std::shared_ptr<AdmissionGate> gate,
               std::string run_id)
      : inner_(inner), gate_(std::move(gate)), run_id_(std::move(run_id)) {}

  void execute(std::shared_ptr<services::Service> svc,
               std::vector<services::Inputs> bindings, Callback on_complete) override {
    gate_->execute(run_id_, std::move(svc), std::move(bindings), {},
                   std::move(on_complete));
  }
  void execute(std::shared_ptr<services::Service> svc,
               std::vector<services::Inputs> bindings, enactor::ExecOptions options,
               Callback on_complete) override {
    gate_->execute(run_id_, std::move(svc), std::move(bindings), std::move(options),
                   std::move(on_complete));
  }
  double now() const override { return inner_.now(); }
  TimerId schedule(double delay_seconds, std::function<void()> fn) override {
    return inner_.schedule(delay_seconds, std::move(fn));
  }
  void cancel(TimerId id) override { inner_.cancel(id); }
  bool drive(const std::function<bool()>& done) override { return inner_.drive(done); }
  void set_metrics(obs::MetricsRegistry* metrics) override { inner_.set_metrics(metrics); }
  void set_health(grid::CeHealth* health) override { inner_.set_health(health); }
  void add_health(grid::CeHealth* health) override { inner_.add_health(health); }
  void remove_health(grid::CeHealth* health) override { inner_.remove_health(health); }
  void notify() override { inner_.notify(); }

 private:
  enactor::ExecutionBackend& inner_;
  std::shared_ptr<AdmissionGate> gate_;
  std::string run_id_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ServiceCore
// ---------------------------------------------------------------------------

namespace detail {

void ServiceCore::ensure_instruments() {
  if (recorder == nullptr || instruments_ready) return;
  instruments_ready = true;
  obs::MetricsRegistry& m = recorder->metrics();
  active_gauge = &m.gauge("moteur_service_active_runs", "Runs currently enacting");
  queued_gauge = &m.gauge("moteur_service_queued_runs",
                          "Runs admitted to the service but waiting for an active slot");
  gate_depth = &m.gauge("moteur_service_gate_queue_depth",
                        "Submissions queued in the admission gates across all runs");
  admission_wait = &m.histogram(
      "moteur_service_admission_wait_seconds",
      "Backend-time a run waited in the service queue before starting",
      obs::Histogram::latency_bounds());
  gate_wait = &m.histogram(
      "moteur_service_gate_wait_seconds",
      "Backend-time a submission waited in the admission gate before launch",
      obs::Histogram::latency_bounds());
}

grid::CeHealth* ServiceCore::ensure_health(const enactor::EnactmentPolicy& policy) {
  std::lock_guard<std::mutex> lock(lazy_mu);
  if (shared_health == nullptr && policy.breaker.enabled) {
    shared_health = std::make_unique<grid::CeHealth>(policy.breaker);
    shared_health->set_transition_listener(
        [this](const grid::CeHealth::Transition& t) { on_breaker_transition(t); });
    shared_health->set_reroute_listener([this](double time) {
      obs::RunEvent event;
      event.kind = obs::RunEvent::Kind::kSubmissionRerouted;
      event.time = time;
      emit_service_event(event);
    });
    backend.add_health(shared_health.get());
  }
  return shared_health.get();
}

data::InvocationCache* ServiceCore::ensure_cache(const enactor::EnactmentPolicy& policy) {
  std::lock_guard<std::mutex> lock(lazy_mu);
  if (shared_cache == nullptr && policy.cache) {
    shared_cache = std::make_unique<data::InvocationCache>();
  }
  return shared_cache.get();
}

void ServiceCore::deliver_events(const std::vector<obs::RunEvent>& batch) {
  std::lock_guard<std::mutex> lock(obs_mu);
  for (const auto& event : batch) {
    for (const auto& subscriber : subscribers) subscriber(event);
    if (recorder != nullptr) recorder->on_event(event);
  }
}

void ServiceCore::emit_service_event(const obs::RunEvent& event) {
  std::lock_guard<std::mutex> lock(obs_mu);
  for (const auto& subscriber : subscribers) subscriber(event);
  if (recorder != nullptr) recorder->on_event(event);
}

void ServiceCore::on_breaker_transition(const grid::CeHealth::Transition& t) {
  obs::RunEvent event;
  event.time = t.time;
  event.computing_element = t.computing_element;
  switch (t.to) {
    case grid::BreakerState::kOpen: event.kind = obs::RunEvent::Kind::kBreakerOpened; break;
    case grid::BreakerState::kHalfOpen:
      event.kind = obs::RunEvent::Kind::kBreakerHalfOpen;
      break;
    case grid::BreakerState::kClosed: event.kind = obs::RunEvent::Kind::kBreakerClosed; break;
  }
  emit_service_event(event);
}

void ServiceCore::count_terminal(RunState state) {
  if (recorder == nullptr) return;
  std::lock_guard<std::mutex> lock(obs_mu);
  recorder->metrics()
      .counter("moteur_service_runs_total", "Runs reaching a terminal state, by state",
               obs::Labels{{"state", to_string(state)}})
      .inc();
}

void ServiceCore::run_finished() {
  {
    std::lock_guard<std::mutex> lock(live_mu);
    --live;
  }
  idle_cv.notify_all();
  terminal_cv.notify_all();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// EngineShard
// ---------------------------------------------------------------------------

EngineShard::EngineShard(std::size_t index, ServiceCore& core,
                         std::unique_ptr<enactor::ExecutionBackend> channel,
                         std::size_t max_active, std::size_t obs_batch)
    : index_(index),
      core_(core),
      channel_(std::move(channel)),
      max_active_(max_active),
      obs_batch_(obs_batch == 0 ? 1 : obs_batch) {
  if (!core_.config.telemetry.flight_recorder_path.empty()) {
    flight_ = std::make_unique<obs::FlightRecorder>(
        std::max<std::size_t>(1, core_.config.telemetry.flight_recorder_events));
  }
  AdmissionGate::Config gate_config;
  const std::size_t shards = core_.config.sharding.shards;
  const std::size_t total_inflight = core_.config.admission.max_inflight;
  // Even slice of the service-wide in-flight cap, at least 1 per shard;
  // 0 stays 0 (unbounded).
  gate_config.max_inflight =
      total_inflight == 0 ? 0 : std::max<std::size_t>(1, total_inflight / std::max<std::size_t>(1, shards));
  gate_config.policy = core_.config.admission.policy;
  gate_ = std::make_shared<AdmissionGate>(backend(), gate_config);
  gate_->set_grant_observer([this](double waited, const std::string& policy_name) {
    if (core_.recorder == nullptr) return;
    std::lock_guard<std::mutex> lock(core_.obs_mu);
    if (core_.gate_wait != nullptr) core_.gate_wait->observe(waited);
    core_.recorder->metrics()
        .counter("moteur_policy_decisions_total",
                 "Policy decisions by policy name and decision kind",
                 {{"policy", policy_name}, {"kind", "admission"}})
        .inc();
  });
  batch_.reserve(obs_batch_);
}

EngineShard::~EngineShard() { join(); }

void EngineShard::start() {
  thread_ = std::thread([this] { run_worker(); });
}

void EngineShard::enqueue(std::vector<RunRecordPtr> batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    load_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (auto& rec : batch) pending_.push_back(std::move(rec));
    commands_ = true;
  }
  cv_.notify_all();
  backend().notify();
}

void EngineShard::wake() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    commands_ = true;
  }
  cv_.notify_all();
  backend().notify();
}

void EngineShard::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    commands_ = true;
  }
  cv_.notify_all();
  backend().notify();
}

void EngineShard::join() {
  if (thread_.joinable()) thread_.join();
}

ShardStats EngineShard::stats() const {
  ShardStats s;
  s.shard = index_;
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.runs = runs_done_;
  s.invocations = invocations_done_;
  s.admission_waits = admission_waits_;
  return s;
}

void EngineShard::obs_emit(const obs::RunEvent& event) {
  if (flight_ != nullptr) flight_->record(event);
  batch_.push_back(event);
  if (batch_.size() >= obs_batch_) obs_flush();
}

void EngineShard::obs_flush() {
  if (batch_.empty()) return;
  core_.deliver_events(batch_);
  batch_.clear();
}

void EngineShard::ensure_shard_instruments() {
  if (core_.recorder == nullptr || shard_runs_ != nullptr) return;
  obs::MetricsRegistry& m = core_.recorder->metrics();
  const obs::Labels by_shard{{"shard", std::to_string(index_)}};
  shard_runs_ = &m.counter("moteur_shard_runs_total",
                           "Runs retired to a terminal state, per engine shard", by_shard);
  shard_invocations_ = &m.counter("moteur_shard_invocations_total",
                                  "Logical invocations completed, per engine shard", by_shard);
  shard_active_ =
      &m.gauge("moteur_shard_active_runs", "Runs currently enacting, per engine shard",
               by_shard);
  shard_queue_ = &m.gauge("moteur_shard_queued_runs",
                          "Runs pinned to the shard awaiting an active slot", by_shard);
}

void EngineShard::update_gauges(std::size_t active, std::size_t queued) {
  const long gate_depth = static_cast<long>(gate_->queued());
  const long d_active = static_cast<long>(active) - last_active_;
  const long d_queued = static_cast<long>(queued) - last_queued_;
  const long d_gate = gate_depth - last_gate_depth_;
  last_active_ = static_cast<long>(active);
  last_queued_ = static_cast<long>(queued);
  last_gate_depth_ = gate_depth;
  active_now_.store(last_active_, std::memory_order_relaxed);
  queued_now_.store(last_queued_, std::memory_order_relaxed);
  if (d_active != 0) core_.active_total.fetch_add(d_active, std::memory_order_relaxed);
  if (d_queued != 0) core_.queued_total.fetch_add(d_queued, std::memory_order_relaxed);
  if (d_gate != 0) core_.gate_depth_total.fetch_add(d_gate, std::memory_order_relaxed);
  if (core_.recorder == nullptr) return;
  std::lock_guard<std::mutex> lock(core_.obs_mu);
  if (core_.active_gauge != nullptr) {
    core_.active_gauge->set(static_cast<double>(core_.active_total.load()));
  }
  if (core_.queued_gauge != nullptr) {
    core_.queued_gauge->set(static_cast<double>(core_.queued_total.load()));
  }
  if (core_.gate_depth != nullptr) {
    core_.gate_depth->set(static_cast<double>(core_.gate_depth_total.load()));
  }
  if (shard_active_ != nullptr) shard_active_->set(static_cast<double>(active));
  if (shard_queue_ != nullptr) shard_queue_->set(static_cast<double>(queued));
}

void EngineShard::finish_record(const RunRecordPtr& rec, RunState state,
                                enactor::EnactmentResult result, std::string error) {
  obs_flush();  // the run's remaining events must precede its terminal state
  // Dump for every abnormal outcome: explicit failure/cancellation, and runs
  // that retired kFinished but recorded failed invocations (failfast stops the
  // enactment yet the engine still completes, so the state alone misses them).
  if (flight_ != nullptr &&
      (state == RunState::kFailed || state == RunState::kCancelled ||
       result.failures() != 0)) {
    const std::string path =
        core_.config.telemetry.flight_recorder_path + rec->id + ".json";
    std::ofstream dump(path, std::ios::trunc);
    if (dump.is_open()) {
      dump << flight_->dump_json(rec->id, to_string(state), error);
      MOTEUR_LOG(kInfo, "service")
          << "flight recorder dumped " << flight_->window().size() << " event(s) to '"
          << path << "' for run '" << rec->id << "'";
    } else {
      MOTEUR_LOG(kWarn, "service") << "cannot write flight-recorder dump '" << path << "'";
    }
  }
  const std::uint64_t invocations = result.invocations();
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->state = state;
    rec->result = std::move(result);
    rec->error = std::move(error);
    rec->poke = nullptr;
  }
  rec->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++runs_done_;
    invocations_done_ += invocations;
  }
  core_.count_terminal(state);
  if (core_.recorder != nullptr) {
    std::lock_guard<std::mutex> lock(core_.obs_mu);
    if (shard_runs_ != nullptr) shard_runs_->inc();
    if (shard_invocations_ != nullptr) {
      shard_invocations_->inc(static_cast<double>(invocations));
    }
  }
  load_.fetch_sub(1, std::memory_order_relaxed);
  core_.run_finished();
}

bool EngineShard::admit(const RunRecordPtr& rec) {
  if (core_.recorder != nullptr) {
    std::lock_guard<std::mutex> lock(core_.obs_mu);
    core_.ensure_instruments();
    ensure_shard_instruments();
  }
  const enactor::EnactmentPolicy& policy = core_.effective_policy(*rec);
  grid::CeHealth* health = core_.ensure_health(policy);
  data::InvocationCache* cache = core_.ensure_cache(policy);
  double waited = 0.0;
  if (rec->queued_backend_at >= 0.0) {
    waited = backend().now() - rec->queued_backend_at;
    if (core_.recorder != nullptr) {
      std::lock_guard<std::mutex> lock(core_.obs_mu);
      if (core_.admission_wait != nullptr) core_.admission_wait->observe(waited);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    admission_waits_.push_back(waited);
  }
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->admission_wait = waited;
  }
  gate_->register_run(rec->id, rec->request.weight, policy.admission);
  rec->gated = std::make_unique<GatedBackend>(backend(), gate_, rec->id);

  std::vector<enactor::EventSubscriber> subs;
  // The flight recorder needs the event stream even with no recorder or
  // subscriber attached (deliver_events is then a cheap no-op per batch).
  if (!core_.subscribers.empty() || core_.recorder != nullptr || flight_ != nullptr) {
    subs.push_back([this](const obs::RunEvent& e) { obs_emit(e); });
  }
  enactor::Engine::Options options;
  options.run_id = rec->id;
  options.shared_health = health;
  if (policy.cache) options.cache = cache;
  try {
    rec->engine = std::make_shared<enactor::Engine>(
        *rec->gated, core_.registry, policy, rec->request.resolver, std::move(subs),
        rec->request.workflow, rec->request.inputs, std::move(options));
    rec->engine->start();
  } catch (const Error& e) {
    // Construction/start failures (invalid workflow, binding mismatch).
    // start() may have pushed submissions into the gate already: flush
    // them (the engine's weak-guarded callbacks discard the deliveries).
    rec->engine.reset();
    gate_->cancel_run(rec->id);
    gate_->deregister_run(rec->id);
    rec->gated.reset();
    finish_record(rec, RunState::kFailed, {}, e.what());
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->state = RunState::kRunning;
  }
  MOTEUR_LOG(kInfo, "service") << "run '" << rec->id << "' started (workflow '"
                               << rec->request.workflow.name() << "') on shard " << index_;
  return true;
}

void EngineShard::retire(const RunRecordPtr& rec, RunState state, std::string error) {
  enactor::EnactmentResult result = rec->engine->finish();
  rec->engine.reset();
  gate_->cancel_run(rec->id);  // flush any leftovers (no-op when drained)
  gate_->deregister_run(rec->id);
  rec->gated.reset();
  MOTEUR_LOG(kInfo, "service") << "run '" << rec->id << "' " << to_string(state)
                               << " makespan=" << result.makespan()
                               << "s invocations=" << result.invocations()
                               << " failures=" << result.failures();
  finish_record(rec, state, std::move(result), std::move(error));
}

void EngineShard::run_worker() {
  std::vector<RunRecordPtr> active;
  for (;;) {
    // Nothing lingers in the obs batch while the shard blocks.
    obs_flush();

    // --- Intake: wait for work, then admit up to the active-run slice.
    std::deque<RunRecordPtr> snapshot;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || commands_.load() || !pending_.empty() || !active.empty();
      });
      commands_ = false;
      if (stop_ && pending_.empty() && active.empty()) return;
      snapshot.swap(pending_);
    }
    // Outside mu_ (lock order: a canceller holds rec->mu before taking mu_,
    // so the worker must never nest them the other way).
    std::deque<RunRecordPtr> keep;
    for (auto& rec : snapshot) {
      bool cancelled = false;
      {
        std::lock_guard<std::mutex> lock(rec->mu);
        cancelled = rec->cancel_requested;
      }
      if (cancelled) {
        finish_record(rec, RunState::kCancelled, {}, "cancelled before start");
      } else if (active.size() < max_active_) {
        if (admit(rec)) active.push_back(rec);
      } else {
        if (rec->queued_backend_at < 0.0) rec->queued_backend_at = backend().now();
        keep.push_back(rec);
      }
    }
    std::size_t queued_count = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.insert(pending_.begin(), keep.begin(), keep.end());
      queued_count = pending_.size();
    }
    update_gauges(active.size(), queued_count);
    if (active.empty()) {
      core_.idle_cv.notify_all();  // belt-and-braces; waiters re-check live
      continue;
    }

    // --- Drive this shard's event loop until a run completes or a command
    // (submit/cancel/shutdown) needs servicing.
    const bool progressed = backend().drive([&] {
      if (commands_.load(std::memory_order_relaxed)) return true;
      for (const auto& rec : active) {
        if (rec->engine->finished()) return true;
      }
      return false;
    });
    update_gauges(active.size(), queued_count);

    // --- Harvest every run whose engine completed. The post-harvest
    // occupancy is published BEFORE retiring: retire() completes the run's
    // handle, after which a waiter may read the registry the moment wait()
    // returns, so the gauge write must happen-before that completion —
    // otherwise the active-run gauges (and telemetry frames) would keep
    // showing retired runs until the next submission wakes the shard.
    std::vector<RunRecordPtr> done;
    for (auto it = active.begin(); it != active.end();) {
      if ((*it)->engine->finished()) {
        done.push_back(*it);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    const bool harvested = !done.empty();
    if (harvested) update_gauges(active.size(), queued_count);
    for (const auto& rec : done) {
      bool was_cancelled = false;
      {
        std::lock_guard<std::mutex> lock(rec->mu);
        was_cancelled = rec->cancel_requested;
      }
      retire(rec, was_cancelled ? RunState::kCancelled : RunState::kFinished, "");
    }

    // --- Deliver cancellations into still-active runs exactly once.
    for (const auto& rec : active) {
      if (rec->cancel_applied) continue;
      bool wanted = false;
      {
        std::lock_guard<std::mutex> lock(rec->mu);
        wanted = rec->cancel_requested;
      }
      if (wanted) {
        gate_->cancel_run(rec->id);
        rec->cancel_applied = true;
      }
    }

    // --- Stall recovery: this shard's loop ran dry with unfinished runs.
    if (!progressed && !harvested && !active.empty()) {
      bool moved = false;
      for (const auto& rec : active) {
        if (rec->engine->try_unstall()) moved = true;
      }
      if (!moved) {
        // No run can make progress: every active run of this shard is
        // deadlocked (its event loop has no pending work for any of them).
        // Same ordering rule as the harvest: gauges first, then retire.
        update_gauges(0, queued_count);
        for (const auto& rec : active) {
          const std::string stuck = rec->engine->stuck_processors();
          retire(rec, RunState::kFailed,
                 "workflow deadlocked; unfinished processors: " + stuck);
        }
        active.clear();
      }
    }
  }
}

}  // namespace moteur::service
