file(REMOVE_RECURSE
  "libmoteur_xml.a"
)
