#include <gtest/gtest.h>

#include <thread>

#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "enactor/timeline_csv.hpp"
#include "grid/grid.hpp"
#include "services/async.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "workflow/analysis.hpp"
#include "workflow/grouping.hpp"
#include "workflow/patterns.hpp"

namespace moteur {
namespace {

// ---------------------------------------------------------------------------
// Pattern builders
// ---------------------------------------------------------------------------

TEST(Patterns, ChainShape) {
  const auto wf = workflow::make_chain(4);
  EXPECT_EQ(wf.services().size(), 4u);
  EXPECT_EQ(workflow::critical_path_length(wf), 4u);
}

TEST(Patterns, FanOutShape) {
  const auto wf = workflow::make_fan_out(3);
  EXPECT_EQ(wf.services().size(), 4u);  // P0 + 3 branches
  EXPECT_EQ(wf.links_out_of("P0").size(), 3u);
  EXPECT_EQ(workflow::critical_path_length(wf), 2u);
}

TEST(Patterns, FanInBarrierShape) {
  const auto wf = workflow::make_fan_in_barrier(3);
  EXPECT_TRUE(wf.processor("barrier").synchronization);
  EXPECT_EQ(wf.processor("barrier").input_ports.size(), 3u);
  // Only the sink follows the barrier, so every service sits in layer 0.
  EXPECT_EQ(workflow::synchronization_layers(wf).size(), 1u);
}

TEST(Patterns, CrossShape) {
  const auto wf = workflow::make_cross();
  EXPECT_EQ(wf.processor("P0").iteration, workflow::IterationStrategy::kCross);
  EXPECT_EQ(wf.sources().size(), 2u);
}

TEST(Patterns, LoopShape) {
  const auto wf = workflow::make_optimization_loop();
  bool has_feedback = false;
  for (const auto& link : wf.links()) has_feedback |= link.feedback;
  EXPECT_TRUE(has_feedback);
}

TEST(Patterns, GroupablePairGroups) {
  workflow::GroupingReport report;
  workflow::group_sequential_processors(workflow::make_groupable_pair(), &report);
  EXPECT_EQ(report.merges, 1u);
}

TEST(Patterns, FanInBarrierEnactsEndToEnd) {
  const auto wf = workflow::make_fan_in_barrier(3);
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::constant(10.0));
  enactor::SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  for (int b = 0; b < 3; ++b) {
    registry.add(services::make_simulated_service("P" + std::to_string(b), {"in"},
                                                  {"out"}, services::JobProfile{5.0}));
  }
  registry.add(services::make_simulated_service(
      "barrier", {"from0", "from1", "from2"}, {"out"}, services::JobProfile{5.0}));
  data::InputDataSet ds;
  for (int j = 0; j < 4; ++j) ds.add_item("src", "d" + std::to_string(j));
  enactor::Enactor moteur(backend, registry, enactor::EnactmentPolicy::sp_dp());
  const auto result = moteur.run({.workflow = wf, .inputs = ds});
  EXPECT_EQ(result.invocations(), 3u * 4u + 1u);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), 1u);
}

// ---------------------------------------------------------------------------
// Timeline CSV
// ---------------------------------------------------------------------------

TEST(TimelineCsv, HeaderRowsAndEscaping) {
  enactor::Timeline timeline;
  enactor::InvocationTrace trace;
  trace.processor = "crest,Lines\"x\"";  // needs escaping
  trace.indices = {{0}};
  trace.submit_time = 1.0;
  trace.start_time = 2.0;
  trace.end_time = 5.0;
  grid::JobRecord job;
  job.submit_time = 1.0;
  job.run_start_time = 2.0;
  job.run_end_time = 5.0;
  job.completion_time = 5.0;
  job.computing_element = "ce3";
  trace.job = job;
  timeline.add(trace);

  const std::string csv = enactor::timeline_to_csv(timeline);
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "processor,data,submit_s,start_s,end_s,span_s,overhead_s,site,failed,attempt,"
            "superseded,status,skipped");
  EXPECT_NE(lines[1].find(",Ok,"), std::string::npos);  // status never empty
  EXPECT_NE(lines[1].find("\"crest,Lines\"\"x\"\"\""), std::string::npos);
  EXPECT_NE(lines[1].find("ce3"), std::string::npos);
  EXPECT_NE(lines[1].find(",0"), std::string::npos);  // failed flag
}

TEST(TimelineCsv, SortedBySubmitTime) {
  enactor::Timeline timeline;
  for (const double t : {5.0, 1.0, 3.0}) {
    enactor::InvocationTrace trace;
    trace.processor = "P" + std::to_string(static_cast<int>(t));
    trace.submit_time = t;
    trace.start_time = t;
    trace.end_time = t + 1;
    timeline.add(trace);
  }
  const auto lines = split(enactor::timeline_to_csv(timeline), '\n');
  EXPECT_NE(lines[1].find("P1"), std::string::npos);
  EXPECT_NE(lines[2].find("P3"), std::string::npos);
  EXPECT_NE(lines[3].find("P5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AsyncInvoker (GridRPC-style client calls, §3.1)
// ---------------------------------------------------------------------------

std::shared_ptr<services::FunctionalService> slow_doubler() {
  return std::make_shared<services::FunctionalService>(
      "double", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const services::Inputs& in) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        services::Result r;
        const int v = in.at("in").as<int>();
        r.outputs["out"] = services::OutputValue{2 * v, std::to_string(2 * v)};
        return r;
      });
}

TEST(AsyncInvoker, AsyncCallsOverlap) {
  services::AsyncInvoker invoker(4);
  auto service = slow_doubler();
  std::vector<services::AsyncInvoker::Handle> handles;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    services::Inputs in;
    in.emplace("in", data::Token::from_source("s", static_cast<std::size_t>(i), i,
                                              std::to_string(i)));
    handles.push_back(invoker.call_async(service, std::move(in)));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(std::any_cast<int>(handles[static_cast<std::size_t>(i)]
                                     .wait()
                                     .outputs.at("out")
                                     .payload),
              2 * i);
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  // 4 overlapped 20 ms calls finish well before 4 x 20 ms.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.06);
}

TEST(AsyncInvoker, BlockingCallAndReadiness) {
  services::AsyncInvoker invoker(2);
  auto service = slow_doubler();
  services::Inputs in;
  in.emplace("in", data::Token::from_source("s", 0, 21, "21"));
  const services::Result direct = invoker.call(*service, in);
  EXPECT_EQ(std::any_cast<int>(direct.outputs.at("out").payload), 42);

  auto handle = invoker.call_async(service, in);
  handle.wait();
  EXPECT_TRUE(handle.ready());
}

TEST(AsyncInvoker, ExceptionsSurfaceAtWait) {
  services::AsyncInvoker invoker(2);
  auto failing = std::make_shared<services::FunctionalService>(
      "boom", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const services::Inputs&) -> services::Result {
        throw std::runtime_error("remote fault");
      });
  services::Inputs in;
  in.emplace("in", data::Token::from_source("s", 0, 1, "1"));
  auto handle = invoker.call_async(failing, in);
  EXPECT_THROW(handle.wait(), std::runtime_error);
}

}  // namespace
}  // namespace moteur
