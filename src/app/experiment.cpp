#include "app/experiment.hpp"

#include <sstream>

#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace moteur::app {

namespace {

RunOutcome run_replica(const enactor::EnactmentPolicy& policy, std::size_t n_pairs,
                       const ExperimentOptions& options, std::uint64_t seed) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, options.grid_preset(seed));
  enactor::SimGridBackend backend(grid);

  services::ServiceRegistry registry;
  register_simulated_services(registry, options.profiles);

  enactor::Enactor enactor(backend, registry, policy);
  enactor::RunRequest request;
  request.workflow = bronze_standard_workflow();
  request.inputs = bronze_standard_dataset(n_pairs);
  const enactor::EnactmentResult result = enactor.run(std::move(request));

  RunOutcome outcome;
  outcome.configuration = policy.name();
  outcome.n_pairs = n_pairs;
  outcome.makespan_seconds = result.makespan();
  outcome.jobs_submitted = result.submissions();
  outcome.invocations = result.invocations();
  outcome.failures = result.failures();
  outcome.mean_job_overhead = grid.stats().overhead_seconds.mean();
  return outcome;
}

}  // namespace

RunOutcome run_bronze_once(const enactor::EnactmentPolicy& policy, std::size_t n_pairs,
                           const ExperimentOptions& options) {
  const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
  RunOutcome mean = run_replica(policy, n_pairs, options, options.seed);
  for (std::size_t r = 1; r < replicas; ++r) {
    const RunOutcome next =
        run_replica(policy, n_pairs, options, options.seed + 1000 * r);
    mean.makespan_seconds += next.makespan_seconds;
    mean.mean_job_overhead += next.mean_job_overhead;
    mean.failures += next.failures;
  }
  mean.makespan_seconds /= static_cast<double>(replicas);
  mean.mean_job_overhead /= static_cast<double>(replicas);
  return mean;
}

const RunOutcome& ExperimentTable::cell(const std::string& configuration,
                                        std::size_t n_pairs) const {
  for (const auto& row : rows) {
    if (row.configuration == configuration && row.n_pairs == n_pairs) return row;
  }
  throw InternalError("no experiment cell for " + configuration + " x " +
                      std::to_string(n_pairs));
}

model::Series ExperimentTable::series(const std::string& configuration) const {
  model::Series out;
  out.label = configuration;
  for (const auto& row : rows) {
    if (row.configuration == configuration) {
      out.sizes.push_back(static_cast<double>(row.n_pairs));
      out.times.push_back(row.makespan_seconds);
    }
  }
  MOTEUR_REQUIRE(!out.sizes.empty(), InternalError,
                 "no runs recorded for configuration '" + configuration + "'");
  return out;
}

namespace {

std::vector<std::size_t> sizes_of(const std::vector<RunOutcome>& rows) {
  std::vector<std::size_t> sizes;
  for (const auto& row : rows) {
    if (std::find(sizes.begin(), sizes.end(), row.n_pairs) == sizes.end()) {
      sizes.push_back(row.n_pairs);
    }
  }
  return sizes;
}

std::vector<std::string> configurations_of(const std::vector<RunOutcome>& rows) {
  std::vector<std::string> configs;
  for (const auto& row : rows) {
    if (std::find(configs.begin(), configs.end(), row.configuration) == configs.end()) {
      configs.push_back(row.configuration);
    }
  }
  return configs;
}

}  // namespace

std::string ExperimentTable::render_table1() const {
  const auto sizes = sizes_of(rows);
  const auto configs = configurations_of(rows);
  std::ostringstream os;
  os << pad_right("Configuration", 14) << "  Computation time (s)\n";
  os << pad_right("", 14);
  for (const auto size : sizes) {
    os << pad_left(std::to_string(size) + " images", 14);
  }
  os << '\n';
  for (const auto& config : configs) {
    os << pad_right(config, 14);
    for (const auto size : sizes) {
      os << pad_left(format_fixed(cell(config, size).makespan_seconds, 0), 14);
    }
    os << '\n';
  }
  return os.str();
}

std::string ExperimentTable::render_figure10() const {
  const auto sizes = sizes_of(rows);
  const auto configs = configurations_of(rows);
  std::ostringstream os;
  os << "# Execution time (hours) vs number of input image pairs\n";
  os << pad_right("pairs", 8);
  for (const auto& config : configs) os << pad_left(config, 12);
  os << '\n';
  for (const auto size : sizes) {
    os << pad_right(std::to_string(size), 8);
    for (const auto& config : configs) {
      os << pad_left(format_fixed(cell(config, size).makespan_seconds / 3600.0, 2), 12);
    }
    os << '\n';
  }
  return os.str();
}

ExperimentTable run_bronze_experiment(const ExperimentOptions& options) {
  ExperimentTable table;
  for (const auto& config : options.configurations) {
    const enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::parse(config);
    for (const auto size : options.sizes) {
      table.rows.push_back(run_bronze_once(policy, size, options));
    }
  }
  return table;
}

}  // namespace moteur::app
