#include <gtest/gtest.h>

#include <algorithm>

#include "app/bronze_standard.hpp"
#include "util/error.hpp"
#include "workflow/analysis.hpp"
#include "workflow/grouping.hpp"

namespace moteur::workflow {
namespace {

/// source -> A -> B -> sink, plus B taking a second input from the source.
Workflow chain() {
  Workflow wf("chain");
  wf.add_source("s");
  wf.add_processor("A", {"in"}, {"out"});
  wf.add_processor("B", {"in", "extra"}, {"out"});
  wf.add_sink("k");
  wf.link("s", "out", "A", "in");
  wf.link("A", "out", "B", "in");
  wf.link("s", "out", "B", "extra");  // from an ancestor of A: still groupable
  wf.link("B", "out", "k", "in");
  return wf;
}

TEST(Grouping, QualifyAndSplitPorts) {
  Processor plain;
  plain.name = "crestLines";
  EXPECT_EQ(qualify_port(plain, "c1"), "crestLines/c1");
  const auto [member, port] = split_grouped_port("crestLines/c1");
  EXPECT_EQ(member, "crestLines");
  EXPECT_EQ(port, "c1");
  EXPECT_THROW(split_grouped_port("noslash"), GraphError);
}

TEST(Grouping, SequentialChainMerges) {
  const Workflow wf = chain();
  EXPECT_TRUE(can_group(wf, "A", "B"));

  GroupingReport report;
  const Workflow grouped = group_sequential_processors(wf, &report);
  EXPECT_EQ(report.merges, 1u);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0], (std::vector<std::string>{"A", "B"}));

  const Processor& g = grouped.processor("A+B");
  EXPECT_TRUE(g.is_grouped());
  // External ports: A/in (from source), B/extra (from source); B/in became
  // internal.
  EXPECT_EQ(g.input_ports, (std::vector<std::string>{"A/in", "B/extra"}));
  EXPECT_EQ(g.output_ports, (std::vector<std::string>{"A/out", "B/out"}));
  ASSERT_EQ(g.internal_links.size(), 1u);
  EXPECT_EQ(g.internal_links[0].from_member, "A");
  EXPECT_EQ(g.internal_links[0].to_member, "B");
  EXPECT_NO_THROW(grouped.validate());
}

TEST(Grouping, InputWorkflowUntouched) {
  const Workflow wf = chain();
  group_sequential_processors(wf);
  EXPECT_TRUE(wf.has_processor("A"));
  EXPECT_TRUE(wf.has_processor("B"));
}

TEST(Grouping, RefusesWhenBHasForeignInputs) {
  // B's second input comes from C, which is NOT an ancestor of A.
  Workflow wf("w");
  wf.add_source("s");
  wf.add_processor("A", {"in"}, {"out"});
  wf.add_processor("C", {"in"}, {"out"});
  wf.add_processor("B", {"in", "extra"}, {"out"});
  wf.add_sink("k");
  wf.link("s", "out", "A", "in");
  wf.link("s", "out", "C", "in");
  wf.link("A", "out", "B", "in");
  wf.link("C", "out", "B", "extra");
  wf.link("B", "out", "k", "in");
  EXPECT_FALSE(can_group(wf, "A", "B"));
  GroupingReport report;
  group_sequential_processors(wf, &report);
  EXPECT_EQ(report.merges, 0u);
}

TEST(Grouping, RefusesWhenADelaysThirdParties) {
  // A also feeds C, and C is not a descendant of B: grouping would delay C.
  Workflow wf("w");
  wf.add_source("s");
  wf.add_processor("A", {"in"}, {"out"});
  wf.add_processor("B", {"in"}, {"out"});
  wf.add_processor("C", {"in"}, {"out"});
  wf.add_sink("k");
  wf.add_sink("k2");
  wf.link("s", "out", "A", "in");
  wf.link("A", "out", "B", "in");
  wf.link("A", "out", "C", "in");
  wf.link("B", "out", "k", "in");
  wf.link("C", "out", "k2", "in");
  EXPECT_FALSE(can_group(wf, "A", "B"));
}

TEST(Grouping, RefusesSynchronizationAndCrossAndFeedback) {
  Workflow wf("w");
  wf.add_source("s");
  wf.add_processor("A", {"in"}, {"out"});
  auto& b = wf.add_processor("B", {"in"}, {"out"});
  wf.add_sink("k");
  wf.link("s", "out", "A", "in");
  wf.link("A", "out", "B", "in");
  wf.link("B", "out", "k", "in");

  b.synchronization = true;
  EXPECT_FALSE(can_group(wf, "A", "B"));
  b.synchronization = false;
  EXPECT_TRUE(can_group(wf, "A", "B"));

  b.iteration = IterationStrategy::kCross;
  EXPECT_FALSE(can_group(wf, "A", "B"));
  b.iteration = IterationStrategy::kDot;

  // A feedback link touching B disables grouping.
  wf.processor("B").output_ports.push_back("loop");
  wf.processor("B").input_ports.push_back("back");
  wf.link("B", "loop", "B", "back", /*feedback=*/true);
  EXPECT_FALSE(can_group(wf, "A", "B"));
}

TEST(Grouping, BronzeStandardFormsThePaperGroups) {
  // §3.6: "group the execution of the crestLines and the crestMatch jobs on
  // the one hand and the PFMatchICP and the PFRegister ones on the other".
  GroupingReport report;
  const Workflow grouped =
      group_sequential_processors(app::bronze_standard_workflow(), &report);

  ASSERT_EQ(report.groups.size(), 2u);
  std::vector<std::vector<std::string>> groups = report.groups;
  std::sort(groups.begin(), groups.end());
  EXPECT_EQ(groups[0], (std::vector<std::string>{"PFMatchICP", "PFRegister"}));
  EXPECT_EQ(groups[1], (std::vector<std::string>{"crestLines", "crestMatch"}));

  // 6 jobs per pair become 4: the two grouped chains + Yasmina + Baladin.
  EXPECT_EQ(grouped.services().size(), 5u);  // 4 per-pair + MultiTransfoTest
  EXPECT_NO_THROW(grouped.validate());

  // Grouping preserves the nominal critical path (grouped nodes weigh their
  // member count).
  EXPECT_EQ(critical_path_length(grouped), 5u);
}

TEST(Grouping, ChainOfThreeCollapsesWhenLegal) {
  Workflow wf("w");
  wf.add_source("s");
  wf.add_processor("A", {"in"}, {"out"});
  wf.add_processor("B", {"in"}, {"out"});
  wf.add_processor("C", {"in"}, {"out"});
  wf.add_sink("k");
  wf.link("s", "out", "A", "in");
  wf.link("A", "out", "B", "in");
  wf.link("B", "out", "C", "in");
  wf.link("C", "out", "k", "in");

  GroupingReport report;
  const Workflow grouped = group_sequential_processors(wf, &report);
  EXPECT_EQ(report.merges, 2u);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0], (std::vector<std::string>{"A", "B", "C"}));
  const Processor& g = grouped.processor("A+B+C");
  EXPECT_EQ(g.internal_links.size(), 2u);
  EXPECT_EQ(g.member_service_ids, (std::vector<std::string>{"A", "B", "C"}));
}

TEST(Grouping, ServiceIdsPropagate) {
  Workflow wf = chain();
  wf.processor("A").service_id = "svcA";
  wf.processor("B").service_id = "svcB";
  const Workflow grouped = group_sequential_processors(wf);
  EXPECT_EQ(grouped.processor("A+B").member_service_ids,
            (std::vector<std::string>{"svcA", "svcB"}));
}

}  // namespace
}  // namespace moteur::workflow
