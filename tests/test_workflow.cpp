#include <gtest/gtest.h>

#include <algorithm>

#include "app/bronze_standard.hpp"
#include "util/error.hpp"
#include "workflow/analysis.hpp"
#include "workflow/graph.hpp"
#include "workflow/scufl.hpp"

namespace moteur::workflow {
namespace {

/// The paper's Figure 1: source -> P1 -> {P2, P3} -> sink.
Workflow figure1() {
  Workflow wf("figure1");
  wf.add_source("src");
  wf.add_processor("P1", {"in"}, {"out"});
  wf.add_processor("P2", {"in"}, {"out"});
  wf.add_processor("P3", {"in"}, {"out"});
  wf.add_sink("sink");
  wf.link("src", "out", "P1", "in");
  wf.link("P1", "out", "P2", "in");
  wf.link("P1", "out", "P3", "in");
  wf.link("P2", "out", "sink", "in");
  wf.link("P3", "out", "sink", "in");
  return wf;
}

/// The paper's Figure 2: an optimization loop (P3 feeds back into P2).
Workflow figure2() {
  Workflow wf("figure2");
  wf.add_source("Source");
  wf.add_processor("P1", {"in"}, {"out"});
  wf.add_processor("P2", {"in"}, {"out"});
  wf.add_processor("P3", {"in"}, {"loop", "exit"});
  wf.add_sink("Sink");
  wf.link("Source", "out", "P1", "in");
  wf.link("P1", "out", "P2", "in");
  wf.link("P2", "out", "P3", "in");
  wf.link("P3", "loop", "P2", "in", /*feedback=*/true);
  wf.link("P3", "exit", "Sink", "in");
  return wf;
}

TEST(Workflow, ValidatesFigure1) {
  EXPECT_NO_THROW(figure1().validate());
}

TEST(Workflow, FeedbackLoopIsLegalOnlyWhenMarked) {
  EXPECT_NO_THROW(figure2().validate());

  Workflow bad("bad");
  bad.add_source("s");
  bad.add_processor("A", {"in", "back"}, {"out"});
  bad.add_processor("B", {"in"}, {"out"});
  bad.link("s", "out", "A", "in");
  bad.link("A", "out", "B", "in");
  bad.link("B", "out", "A", "back");  // unmarked cycle
  EXPECT_THROW(bad.validate(), GraphError);
}

TEST(Workflow, RejectsStructuralErrors) {
  Workflow wf("w");
  wf.add_source("s");
  EXPECT_THROW(wf.add_source("s"), GraphError);  // duplicate name

  wf.add_processor("P", {"a"}, {"b"});
  EXPECT_THROW(wf.link("s", "nope", "P", "a"), GraphError);   // bad from port
  EXPECT_THROW(wf.link("s", "out", "P", "nope"), GraphError);  // bad to port
  EXPECT_THROW(wf.link("s", "out", "Q", "a"), GraphError);     // unknown processor
  EXPECT_THROW(wf.validate(), GraphError);  // P.a unconnected
}

TEST(Workflow, SourceAndSinkShape) {
  Workflow wf("w");
  Processor bad_source;
  bad_source.name = "s";
  bad_source.kind = ProcessorKind::kSource;
  bad_source.input_ports = {"x"};  // sources must not have inputs
  bad_source.output_ports = {"out"};
  wf.add_processor(bad_source);
  EXPECT_THROW(wf.validate(), GraphError);
}

TEST(Workflow, AccessorsAndRemoval) {
  Workflow wf = figure1();
  EXPECT_EQ(wf.sources().size(), 1u);
  EXPECT_EQ(wf.sinks().size(), 1u);
  EXPECT_EQ(wf.services().size(), 3u);
  EXPECT_EQ(wf.links_out_of("P1").size(), 2u);
  EXPECT_EQ(wf.links_into("sink").size(), 2u);
  EXPECT_EQ(wf.links_into_port("P2", "in").size(), 1u);

  wf.remove_processor("P3");
  EXPECT_FALSE(wf.has_processor("P3"));
  EXPECT_EQ(wf.links_into("sink").size(), 1u);
}

TEST(Analysis, TopologicalOrderRespectsEdges) {
  const Workflow wf = figure1();
  const auto order = topological_order(wf);
  const auto pos = [&](const std::string& name) {
    return std::find(order.begin(), order.end(), name) - order.begin();
  };
  EXPECT_LT(pos("src"), pos("P1"));
  EXPECT_LT(pos("P1"), pos("P2"));
  EXPECT_LT(pos("P1"), pos("P3"));
  EXPECT_LT(pos("P2"), pos("sink"));
}

TEST(Analysis, TopologicalOrderIgnoresFeedback) {
  EXPECT_NO_THROW(topological_order(figure2()));
}

TEST(Analysis, AncestorsAndDescendants) {
  const Workflow wf = figure1();
  EXPECT_EQ(ancestors(wf, "P2"), (std::set<std::string>{"src", "P1"}));
  EXPECT_EQ(descendants(wf, "P1"), (std::set<std::string>{"P2", "P3", "sink"}));
  EXPECT_TRUE(ancestors(wf, "src").empty());
  EXPECT_THROW(ancestors(wf, "nope"), GraphError);
}

TEST(Analysis, CoordinationConstraintsActAsEdges) {
  Workflow wf = figure1();
  wf.add_coordination_constraint("P2", "P3");
  EXPECT_TRUE(ancestors(wf, "P3").count("P2"));
  const auto order = topological_order(wf);
  const auto pos = [&](const std::string& name) {
    return std::find(order.begin(), order.end(), name) - order.begin();
  };
  EXPECT_LT(pos("P2"), pos("P3"));
}

TEST(Analysis, CriticalPathOfFigure1) {
  const Workflow wf = figure1();
  EXPECT_EQ(critical_path_length(wf), 2u);  // P1 -> {P2 or P3}
  const Path path = critical_path(wf);
  EXPECT_EQ(path.services.size(), 2u);
  EXPECT_EQ(path.services.front(), "P1");
}

TEST(Analysis, CriticalPathWithWeights) {
  const Workflow wf = figure1();
  std::map<std::string, double> weights{{"P1", 1.0}, {"P2", 10.0}, {"P3", 1.0}};
  const Path path = critical_path(wf, &weights);
  EXPECT_EQ(path.services, (std::vector<std::string>{"P1", "P2"}));
  EXPECT_DOUBLE_EQ(path.weight, 11.0);
}

TEST(Analysis, BronzeStandardCriticalPathIs5) {
  // The paper states nW = 5 for the Bronze-Standard workflow (§5.1).
  EXPECT_EQ(critical_path_length(app::bronze_standard_workflow()), 5u);
}

TEST(Analysis, SynchronizationLayers) {
  Workflow wf("w");
  wf.add_source("s");
  wf.add_processor("A", {"in"}, {"out"});
  auto& barrier = wf.add_processor("B", {"in"}, {"out"});
  barrier.synchronization = true;
  wf.add_processor("C", {"in"}, {"out"});
  wf.add_sink("k");
  wf.link("s", "out", "A", "in");
  wf.link("A", "out", "B", "in");
  wf.link("B", "out", "C", "in");
  wf.link("C", "out", "k", "in");

  const auto layers = synchronization_layers(wf);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0], (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(layers[1], (std::vector<std::string>{"C"}));
}

TEST(Analysis, DotRendering) {
  const std::string dot = to_dot(figure2());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // feedback link
}

TEST(Scufl, RoundTripPreservesEverything) {
  Workflow wf = figure2();
  wf.processor("P2").service_id = "svc-p2";
  wf.processor("P3").synchronization = false;
  wf.processor("P1").iteration = IterationStrategy::kCross;
  wf.add_coordination_constraint("P1", "P3");

  const Workflow parsed = from_scufl(to_scufl(wf));
  EXPECT_EQ(parsed.name(), "figure2");
  EXPECT_EQ(parsed.processors().size(), wf.processors().size());
  EXPECT_EQ(parsed.processor("P2").service_id, "svc-p2");
  EXPECT_EQ(parsed.processor("P1").iteration, IterationStrategy::kCross);
  EXPECT_EQ(parsed.links().size(), wf.links().size());
  ASSERT_EQ(parsed.coordination_constraints().size(), 1u);
  EXPECT_EQ(parsed.coordination_constraints()[0].before, "P1");

  // The feedback flag survives.
  bool found_feedback = false;
  for (const auto& link : parsed.links()) {
    if (link.feedback) {
      found_feedback = true;
      EXPECT_EQ(link.from_processor, "P3");
      EXPECT_EQ(link.to_processor, "P2");
    }
  }
  EXPECT_TRUE(found_feedback);
}

TEST(Scufl, BronzeStandardRoundTrip) {
  const Workflow wf = app::bronze_standard_workflow();
  const Workflow parsed = from_scufl(to_scufl(wf));
  EXPECT_EQ(parsed.processors().size(), wf.processors().size());
  EXPECT_EQ(parsed.links().size(), wf.links().size());
  EXPECT_TRUE(parsed.processor("MultiTransfoTest").synchronization);
  EXPECT_EQ(critical_path_length(parsed), 5u);
}

TEST(Scufl, RejectsMalformedDocuments) {
  EXPECT_THROW(from_scufl("<notaworkflow/>"), ParseError);
  EXPECT_THROW(from_scufl("<workflow><mystery/></workflow>"), ParseError);
  EXPECT_THROW(from_scufl("<workflow><processor name=\"p\">"
                          "<input name=\"a\"/></processor></workflow>"),
               GraphError);  // validation: unconnected input
}

}  // namespace
}  // namespace moteur::workflow
