file(REMOVE_RECURSE
  "CMakeFiles/moteur_grid.dir/background_load.cpp.o"
  "CMakeFiles/moteur_grid.dir/background_load.cpp.o.d"
  "CMakeFiles/moteur_grid.dir/computing_element.cpp.o"
  "CMakeFiles/moteur_grid.dir/computing_element.cpp.o.d"
  "CMakeFiles/moteur_grid.dir/config.cpp.o"
  "CMakeFiles/moteur_grid.dir/config.cpp.o.d"
  "CMakeFiles/moteur_grid.dir/grid.cpp.o"
  "CMakeFiles/moteur_grid.dir/grid.cpp.o.d"
  "CMakeFiles/moteur_grid.dir/overhead_model.cpp.o"
  "CMakeFiles/moteur_grid.dir/overhead_model.cpp.o.d"
  "CMakeFiles/moteur_grid.dir/resource_broker.cpp.o"
  "CMakeFiles/moteur_grid.dir/resource_broker.cpp.o.d"
  "CMakeFiles/moteur_grid.dir/storage_element.cpp.o"
  "CMakeFiles/moteur_grid.dir/storage_element.cpp.o.d"
  "libmoteur_grid.a"
  "libmoteur_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moteur_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
