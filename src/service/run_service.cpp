#include "service/run_service.hpp"

#include <algorithm>
#include <mutex>
#include <set>
#include <utility>

#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "service/shard.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace moteur::service {

const char* to_string(RunState s) {
  switch (s) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kFinished: return "finished";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

bool is_terminal(RunState s) {
  return s == RunState::kFinished || s == RunState::kFailed || s == RunState::kCancelled;
}

const char* to_string(PinPolicy p) {
  switch (p) {
    case PinPolicy::kHash: return "hash";
    case PinPolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

PinPolicy parse_pin_policy(const std::string& text) {
  if (text == "hash") return PinPolicy::kHash;
  if (text == "least-loaded") return PinPolicy::kLeastLoaded;
  throw ParseError("unknown pin policy '" + text + "' (hash | least-loaded)");
}

using detail::RunRecord;

const std::string& RunHandle::id() const {
  static const std::string kEmpty;
  return rec_ != nullptr ? rec_->id : kEmpty;
}

const std::map<std::string, std::string>& RunHandle::labels() const {
  static const std::map<std::string, std::string> kEmpty;
  return rec_ != nullptr ? rec_->labels : kEmpty;
}

RunState RunHandle::poll() const {
  std::lock_guard<std::mutex> lock(rec_->mu);
  return rec_->state;
}

RunState RunHandle::wait() const {
  std::unique_lock<std::mutex> lock(rec_->mu);
  rec_->cv.wait(lock, [&] { return is_terminal(rec_->state); });
  return rec_->state;
}

RunState RunHandle::wait_for_ns(std::chrono::nanoseconds timeout) const {
  std::unique_lock<std::mutex> lock(rec_->mu);
  rec_->cv.wait_for(lock, timeout, [&] { return is_terminal(rec_->state); });
  return rec_->state;
}

void RunHandle::cancel() {
  std::lock_guard<std::mutex> lock(rec_->mu);
  if (is_terminal(rec_->state) || rec_->cancel_requested) return;
  rec_->cancel_requested = true;
  if (rec_->poke) rec_->poke();
}

const enactor::EnactmentResult& RunHandle::result() const {
  std::unique_lock<std::mutex> lock(rec_->mu);
  rec_->cv.wait(lock, [&] { return is_terminal(rec_->state); });
  return rec_->result;  // immutable once terminal
}

const enactor::EnactmentResult* RunHandle::try_result() const {
  std::lock_guard<std::mutex> lock(rec_->mu);
  return is_terminal(rec_->state) ? &rec_->result : nullptr;
}

const std::string& RunHandle::error() const {
  std::unique_lock<std::mutex> lock(rec_->mu);
  rec_->cv.wait(lock, [&] { return is_terminal(rec_->state); });
  return rec_->error;
}

double RunHandle::admission_wait() const {
  if (rec_ == nullptr) return 0.0;
  std::lock_guard<std::mutex> lock(rec_->mu);
  return rec_->admission_wait;
}

/// The dispatcher side of the service: resolves the effective shard count,
/// owns the shards and the shared core, pins submissions, and fans control
/// operations (cancel wake-ups, shutdown) out to the owning shards.
struct RunService::Impl {
  detail::ServiceCore core;
  std::vector<std::unique_ptr<EngineShard>> shards;
  std::unique_ptr<obs::TelemetryHub> hub;
  PinPolicy pin;

  // Submission-side bookkeeping (id allocation, shutdown flag).
  std::mutex submit_mu;
  bool stop = false;
  std::vector<std::shared_ptr<RunRecord>> all;  // every record, for shutdown
  std::size_t next_run = 1;
  std::set<std::string> used_ids;

  std::mutex join_mu;

  Impl(enactor::ExecutionBackend& backend_in, services::ServiceRegistry& registry_in,
       RunServiceConfig config_in)
      : core(backend_in, registry_in, std::move(config_in)),
        pin(core.config.sharding.pin) {
    const std::size_t requested = std::max<std::size_t>(1, core.config.sharding.shards);
    std::vector<std::unique_ptr<enactor::ExecutionBackend>> channels;
    if (requested > 1) {
      channels.reserve(requested);
      for (std::size_t i = 0; i < requested; ++i) {
        auto channel = backend_in.make_channel();
        if (channel == nullptr) {
          MOTEUR_LOG(kWarn, "service")
              << "backend does not support completion channels; clamping "
              << requested << " shards to 1";
          channels.clear();
          break;
        }
        channels.push_back(std::move(channel));
      }
    }
    const std::size_t effective = channels.empty() ? 1 : requested;
    core.config.sharding.shards = effective;  // record what we actually run

    // Even active-run slice, rounded up so the aggregate never shrinks;
    // a single shard keeps the service-wide cap verbatim.
    const std::size_t total_active = core.config.admission.max_active;
    const std::size_t per_shard_active =
        effective == 1 ? total_active : (total_active + effective - 1) / effective;
    // One-event batches keep single-shard delivery synchronous (bit-identical
    // to the pre-shard service); multi-shard batches amortize the obs lock.
    const std::size_t obs_batch = effective == 1 ? 1 : 64;

    shards.reserve(effective);
    for (std::size_t i = 0; i < effective; ++i) {
      auto channel = channels.empty() ? nullptr : std::move(channels[i]);
      shards.push_back(std::make_unique<EngineShard>(i, core, std::move(channel),
                                                     per_shard_active, obs_batch));
    }
  }

  /// Requires submit_mu. Picks the request's name when free, else generates.
  std::string make_id(const std::string& name) {
    if (!name.empty() && used_ids.insert(name).second) return name;
    for (;;) {
      std::string id = "run-" + std::to_string(next_run++);
      if (used_ids.insert(id).second) return id;
    }
  }

  /// Pin a run to a shard. `tentative` counts this batch's assignments so a
  /// least-loaded burst spreads instead of dog-piling one shard.
  std::size_t pick_shard(const std::string& id,
                         const std::vector<std::size_t>& tentative) const {
    const std::size_t n = shards.size();
    if (n == 1) return 0;
    if (pin == PinPolicy::kLeastLoaded) {
      std::size_t best = 0;
      std::size_t best_load = shards[0]->load() + tentative[0];
      for (std::size_t i = 1; i < n; ++i) {
        const std::size_t load = shards[i]->load() + tentative[i];
        if (load < best_load) {
          best = i;
          best_load = load;
        }
      }
      return best;
    }
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the run id
    for (const char c : id) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h % n);
  }
};

RunService::RunService(enactor::ExecutionBackend& backend,
                       services::ServiceRegistry& registry, RunServiceConfig config)
    : impl_(std::make_unique<Impl>(backend, registry, std::move(config))) {
  for (auto& shard : impl_->shards) shard->start();
  Impl& im = *impl_;
  // Backend-originated service-scope events (SE→SE transfer start/done)
  // join the service's event stream: subscribers first, then the recorder,
  // under the same obs lock as run events. Detached in shutdown() once the
  // shards are quiet.
  im.core.backend.set_event_sink([&core = im.core](const obs::RunEvent& event) {
    core.emit_service_event(event);
  });
  const RunServiceConfig::Telemetry& telemetry = im.core.config.telemetry;
  if (telemetry.hub_enabled()) {
    obs::TelemetryHub::Config hub_config;
    hub_config.interval_seconds = telemetry.interval_seconds;
    hub_config.jsonl_path = telemetry.jsonl_path;
    hub_config.scrape_port = telemetry.scrape_port;
    im.hub = std::make_unique<obs::TelemetryHub>(
        std::move(hub_config),
        // Snapshot and scrape read the recorder under the same lock that
        // serializes the shards' event delivery — consistent captures, and
        // a recorder attached after construction is picked up on the next
        // tick.
        [this] { return metrics_snapshot(); },
        [&im] {
          std::lock_guard<std::mutex> lock(im.core.obs_mu);
          return im.core.recorder != nullptr
                     ? obs::prometheus_text(im.core.recorder->metrics())
                     : std::string{};
        },
        [&im] {
          std::vector<obs::ShardSample> samples;
          samples.reserve(im.shards.size());
          for (const auto& shard : im.shards) {
            const ShardStats stats = shard->stats();
            obs::ShardSample sample;
            sample.shard = stats.shard;
            sample.runs = stats.runs;
            sample.invocations = stats.invocations;
            sample.active = static_cast<double>(shard->active_now());
            sample.queued = static_cast<double>(shard->queued_now());
            samples.push_back(sample);
          }
          return samples;
        });
    im.hub->start();
  }
}

RunService::~RunService() { shutdown(); }

RunHandle RunService::submit(enactor::RunRequest request) {
  std::vector<enactor::RunRequest> batch;
  batch.push_back(std::move(request));
  return submit_all(std::move(batch)).front();
}

std::vector<RunHandle> RunService::submit_all(std::vector<enactor::RunRequest> requests) {
  Impl& im = *impl_;
  const std::size_t n = im.shards.size();
  std::vector<RunHandle> handles;
  handles.reserve(requests.size());
  std::vector<std::vector<std::shared_ptr<RunRecord>>> per_shard(n);
  std::vector<std::size_t> tentative(n, 0);
  {
    std::lock_guard<std::mutex> lock(im.submit_mu);
    MOTEUR_REQUIRE(!im.stop, ExecutionError, "RunService is shut down");
    for (auto& request : requests) {
      auto rec = std::make_shared<RunRecord>();
      rec->id = im.make_id(request.name);
      rec->labels = request.labels;
      rec->request = std::move(request);
      const std::size_t shard = im.pick_shard(rec->id, tentative);
      ++tentative[shard];
      rec->shard = shard;
      EngineShard* owner = im.shards[shard].get();
      rec->poke = [owner] { owner->wake(); };
      per_shard[shard].push_back(rec);
      im.all.push_back(rec);
      handles.push_back(RunHandle(rec));
    }
  }
  // Count the batch live before any shard can retire a member of it.
  {
    std::lock_guard<std::mutex> lock(im.core.live_mu);
    im.core.live += handles.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!per_shard[i].empty()) im.shards[i]->enqueue(std::move(per_shard[i]));
  }
  return handles;
}

void RunService::add_event_subscriber(enactor::EventSubscriber subscriber) {
  std::lock_guard<std::mutex> lock(impl_->core.obs_mu);
  impl_->core.subscribers.push_back(std::move(subscriber));
}

void RunService::set_recorder(obs::RunRecorder* recorder) {
  // Under obs_mu: the telemetry hub may already be sampling.
  std::lock_guard<std::mutex> lock(impl_->core.obs_mu);
  impl_->core.recorder = recorder;
}

obs::MetricsSnapshot RunService::metrics_snapshot() const {
  const double at = std::chrono::duration<double>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::lock_guard<std::mutex> lock(impl_->core.obs_mu);
  if (impl_->core.recorder == nullptr) return {};
  return obs::MetricsSnapshot::capture(impl_->core.recorder->metrics(), at);
}

void RunService::with_observability(
    const std::function<void(obs::RunRecorder&)>& fn) const {
  std::lock_guard<std::mutex> lock(impl_->core.obs_mu);
  if (impl_->core.recorder != nullptr) fn(*impl_->core.recorder);
}

obs::TelemetryHub* RunService::telemetry() { return impl_->hub.get(); }

data::InvocationCache* RunService::invocation_cache() {
  std::lock_guard<std::mutex> lock(impl_->core.lazy_mu);
  return impl_->core.shared_cache.get();
}

std::size_t RunService::shards() const { return impl_->shards.size(); }

std::vector<ShardStats> RunService::shard_stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(impl_->shards.size());
  for (const auto& shard : impl_->shards) stats.push_back(shard->stats());
  return stats;
}

void RunService::wait_idle() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.core.live_mu);
  im.core.idle_cv.wait(lock, [&] { return im.core.live == 0; });
}

std::size_t RunService::wait_any(std::span<const RunHandle> handles) {
  Impl& im = *impl_;
  bool any_valid = false;
  for (const auto& handle : handles) {
    if (handle.valid()) {
      any_valid = true;
      break;
    }
  }
  MOTEUR_REQUIRE(any_valid, ExecutionError, "wait_any needs at least one valid handle");
  std::unique_lock<std::mutex> lock(im.core.live_mu);
  for (;;) {
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (!handles[i].valid()) continue;
      if (is_terminal(handles[i].poll())) return i;
    }
    // No lost wakeup: a shard publishes the terminal state (under the
    // record's own mutex) before it can acquire live_mu to notify, and we
    // hold live_mu from the scan until the wait releases it.
    im.core.terminal_cv.wait(lock);
  }
}

void RunService::shutdown() {
  Impl& im = *impl_;
  std::vector<std::shared_ptr<RunRecord>> records;
  {
    std::lock_guard<std::mutex> lock(im.submit_mu);
    im.stop = true;
    records = im.all;
  }
  for (const auto& rec : records) {
    std::lock_guard<std::mutex> lock(rec->mu);
    if (!is_terminal(rec->state)) rec->cancel_requested = true;
  }
  for (auto& shard : im.shards) shard->request_stop();
  {
    std::lock_guard<std::mutex> lock(im.join_mu);
    for (auto& shard : im.shards) shard->join();
  }
  // No shard drives the backend any more, so no transfer event can fire;
  // drop the sink before the core (and its recorder) go away.
  im.core.backend.set_event_sink(nullptr);
  // Shards are quiet: the hub's final frame sees the complete event stream.
  // Destroying it here keeps the telemetry() contract (valid until
  // shutdown) and releases the scrape socket with the service.
  if (im.hub != nullptr) {
    im.hub->stop();
    im.hub.reset();
  }
  // The workers are gone; make sure no handle can poke a dead service.
  for (const auto& rec : records) {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->poke = nullptr;
  }
}

}  // namespace moteur::service
