// Progress-listener API: every invocation produces a Submitted and a
// Completed/Failed event, every service a ProcessorFinished, counters are
// monotone, and the listener never changes the run's outcome.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "workflow/patterns.hpp"

namespace moteur::enactor {
namespace {

data::InputDataSet items(std::size_t count) {
  data::InputDataSet ds;
  for (std::size_t j = 0; j < count; ++j) ds.add_item("src", "d" + std::to_string(j));
  return ds;
}

TEST(Progress, EventsCoverTheWholeRun) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::constant(10.0));
  SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  for (int i = 0; i < 2; ++i) {
    registry.add(services::make_simulated_service("P" + std::to_string(i), {"in"},
                                                  {"out"}, services::JobProfile{5.0}));
  }

  std::vector<ProgressEvent> events;
  Enactor moteur(backend, registry, EnactmentPolicy::sp_dp());
  moteur.add_event_subscriber(enactor::progress_subscriber(
      [&events](const ProgressEvent& e) { events.push_back(e); }));
  const auto result =
      moteur.run({.workflow = workflow::make_chain(2), .inputs = items(4)});

  std::map<ProgressEvent::Kind, std::size_t> counts;
  std::size_t tuples_submitted = 0, tuples_completed = 0;
  double last_time = 0.0;
  std::size_t last_invocations = 0, last_submissions = 0;
  for (const auto& e : events) {
    ++counts[e.kind];
    if (e.kind == ProgressEvent::Kind::kSubmitted) tuples_submitted += e.tuples;
    if (e.kind == ProgressEvent::Kind::kCompleted) tuples_completed += e.tuples;
    EXPECT_GE(e.time, last_time);  // event times are monotone
    last_time = e.time;
    EXPECT_GE(e.total_invocations, last_invocations);  // counters are monotone
    last_invocations = e.total_invocations;
    EXPECT_GE(e.total_submissions, last_submissions);
    last_submissions = e.total_submissions;
  }
  EXPECT_EQ(counts[ProgressEvent::Kind::kSubmitted], result.submissions());
  EXPECT_EQ(counts[ProgressEvent::Kind::kCompleted], result.submissions());
  EXPECT_EQ(counts[ProgressEvent::Kind::kFailed], 0u);
  EXPECT_EQ(counts[ProgressEvent::Kind::kProcessorFinished], 2u);
  EXPECT_EQ(tuples_submitted, 8u);
  EXPECT_EQ(tuples_completed, 8u);
}

TEST(Progress, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(ProgressEvent::Kind::kSubmitted), "Submitted");
  EXPECT_STREQ(kind_name(ProgressEvent::Kind::kCompleted), "Completed");
  EXPECT_STREQ(kind_name(ProgressEvent::Kind::kFailed), "Failed");
  EXPECT_STREQ(kind_name(ProgressEvent::Kind::kRetried), "Retried");
  EXPECT_STREQ(kind_name(ProgressEvent::Kind::kTimedOut), "TimedOut");
  EXPECT_STREQ(kind_name(ProgressEvent::Kind::kProcessorFinished), "ProcessorFinished");
}

TEST(Progress, FailureEventsFire) {
  sim::Simulator simulator;
  auto config = grid::GridConfig::egee2006(9);
  config.failure_probability = 1.0;
  config.max_attempts = 1;
  config.background_jobs_per_hour = 0.0;
  grid::Grid grid(simulator, config);
  SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  registry.add(services::make_simulated_service("P0", {"in"}, {"out"},
                                                services::JobProfile{5.0}));
  std::size_t failed_events = 0;
  Enactor moteur(backend, registry, EnactmentPolicy::sp_dp());
  moteur.add_event_subscriber(
      enactor::progress_subscriber([&failed_events](const ProgressEvent& e) {
        if (e.kind == ProgressEvent::Kind::kFailed) ++failed_events;
      }));
  const auto result =
      moteur.run({.workflow = workflow::make_chain(1), .inputs = items(3)});
  EXPECT_EQ(result.failures(), 3u);
  EXPECT_EQ(failed_events, 3u);
}

TEST(Progress, NoListenerMeansNoOverheadOrChange) {
  const auto run_once = [](bool with_listener) {
    sim::Simulator simulator;
    grid::Grid grid(simulator, grid::GridConfig::constant(10.0));
    SimGridBackend backend(grid);
    services::ServiceRegistry registry;
    registry.add(services::make_simulated_service("P0", {"in"}, {"out"},
                                                  services::JobProfile{5.0}));
    Enactor moteur(backend, registry, EnactmentPolicy::sp_dp());
    if (with_listener) {
      moteur.add_event_subscriber(enactor::progress_subscriber([](const ProgressEvent&) {}));
    }
    return moteur.run({.workflow = workflow::make_chain(1), .inputs = items(5)})
        .makespan();
  };
  EXPECT_DOUBLE_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace moteur::enactor
