// E22 (decentralized data flow) — proxy-routed SE→SE transfers vs the
// centralized orchestrator data path on a contended UI link.
//
// The Bronze Standard runs on a three-SE EGEE grid three ways: centralized
// staging with an unlimited orchestrator link (the historical free-staging
// model), centralized staging with a finite orchestrator bandwidth every
// stage-in/stage-out contends on, and the push-to-consumer replication
// policy that keeps control central but moves data SE→SE. The contended
// centralized arm queues every byte through one link; the decentralized arm
// leaves the link idle and pays the (parallel) pairwise SE links instead.
//
// Acceptance (ISSUE 10): on the contended link the decentralized arm wins
// the makespan crossover, and the bytes round-tripping through the
// orchestrator collapse — centralized UI traffic must be at least 5x the
// decentralized arm's (which is typically zero). Numbers land in
// BENCH_decentralized.json.
#include <cstdint>
#include <cstdio>
#include <string>

#include "app/bronze_standard.hpp"
#include "data/replica_catalog.hpp"
#include "enactor/enactor.hpp"
#include "enactor/run_request.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace moteur;

constexpr std::uint64_t kSeed = 20060619;
constexpr std::size_t kPairs = 24;
// Finite orchestrator link for the contended arms, deliberately slower than
// the aggregate SE fabric so centralized staging serializes behind it.
constexpr double kUiBandwidthMbps = 1.0;
constexpr const char* kStorageElements[] = {"se-north", "se-south", "se-east"};

struct Arm {
  const char* key;
  const char* replication;  // "none" = centralized
  double ui_bandwidth_mbps; // 0 = unlimited link (bypassed)
};

grid::GridConfig arm_config(const Arm& arm) {
  grid::GridConfig cfg = grid::GridConfig::egee2006(kSeed);
  for (const char* name : kStorageElements) {
    grid::StorageElementConfig se;
    se.name = name;
    se.transfer_latency_seconds = 2.0;
    se.transfer_bandwidth_mb_per_s = 10.0;
    cfg.storage_elements.push_back(se);
  }
  for (std::size_t i = 0; i < cfg.computing_elements.size(); ++i)
    cfg.computing_elements[i].close_storage_element = kStorageElements[i % 3];
  cfg.remote_transfer_penalty = 3.0;
  cfg.replication_policy = arm.replication;
  cfg.orchestrator_bandwidth_mbps = arm.ui_bandwidth_mbps;
  return cfg;
}

struct ArmResult {
  double makespan = 0.0;
  std::size_t failures = 0;
  double ui_megabytes = 0.0;
  double ui_busy_seconds = 0.0;
  double peer_megabytes = 0.0;
  std::size_t transfers_started = 0;
  std::size_t transfers_completed = 0;
};

ArmResult run_arm(const Arm& arm) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, arm_config(arm));
  enactor::SimGridBackend backend(grid);
  data::ReplicaCatalog catalog;
  backend.set_catalog(&catalog);

  services::ServiceRegistry registry;
  app::register_simulated_services(registry);

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.failure_policy = enactor::FailurePolicy::kContinue;
  enactor::Enactor moteur(backend, registry, policy);

  const enactor::EnactmentResult result =
      moteur.run({.workflow = app::bronze_standard_workflow(),
                  .inputs = app::bronze_standard_dataset(kPairs)});

  ArmResult out;
  out.makespan = result.makespan();
  out.failures = result.failures();
  out.ui_megabytes = grid.stats().ui_megabytes;
  out.ui_busy_seconds = grid.ui_busy_seconds();
  out.peer_megabytes = grid.stats().transfer_megabytes;
  out.transfers_started = grid.stats().transfers_started;
  out.transfers_completed = grid.stats().transfers_completed;
  return out;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

void write_arm(std::FILE* out, const char* key, const ArmResult& r,
               const char* trailer) {
  std::fprintf(out,
               "    \"%s\": {\"makespan\": %.3f, \"failures\": %zu, "
               "\"ui_megabytes\": %.3f, \"ui_busy_seconds\": %.3f, "
               "\"peer_megabytes\": %.3f, \"transfers_started\": %zu, "
               "\"transfers_completed\": %zu}%s\n",
               key, r.makespan, r.failures, r.ui_megabytes, r.ui_busy_seconds,
               r.peer_megabytes, r.transfers_started, r.transfers_completed, trailer);
}

}  // namespace

int main() {
  std::puts("====================================================================");
  std::puts("E22: decentralized data flow — SE->SE peer transfers vs centralized");
  std::puts("     staging on a contended orchestrator link (Bronze Standard)");
  std::puts("====================================================================");

  const Arm arms[] = {
      {"centralized_unlimited", "none", 0.0},
      {"centralized_contended", "none", kUiBandwidthMbps},
      {"decentralized", "push-to-consumer", kUiBandwidthMbps},
  };
  ArmResult results[3];
  std::printf("  %-22s %10s %8s %10s %10s %9s\n", "arm", "makespan", "ui MB",
              "ui busy s", "peer MB", "transfers");
  for (int i = 0; i < 3; ++i) {
    results[i] = run_arm(arms[i]);
    std::printf("  %-22s %10.0f %8.1f %10.1f %10.1f %9zu\n", arms[i].key,
                results[i].makespan, results[i].ui_megabytes,
                results[i].ui_busy_seconds, results[i].peer_megabytes,
                results[i].transfers_completed);
  }
  std::puts("");

  const ArmResult& unlimited = results[0];
  const ArmResult& contended = results[1];
  const ArmResult& decentralized = results[2];

  bool ok = true;
  ok &= check(unlimited.failures == 0 && contended.failures == 0 &&
                  decentralized.failures == 0,
              "all three arms complete without lost tuples");
  ok &= check(contended.makespan >= unlimited.makespan,
              "the finite orchestrator link can only slow the centralized arm");
  ok &= check(decentralized.makespan < contended.makespan,
              "crossover: decentralized beats centralized on the contended link");
  // The decentralized arm's UI traffic is typically exactly zero, so the
  // ">= 5x drop" guard is phrased without dividing by it.
  ok &= check(contended.ui_megabytes >= 5.0 * decentralized.ui_megabytes &&
                  contended.ui_megabytes > 0.0,
              "orchestrator traffic drops >= 5x under peer routing");
  ok &= check(decentralized.transfers_completed > 0 &&
                  decentralized.peer_megabytes > 0.0,
              "peer routing actually moved bytes SE->SE");

  std::FILE* out = std::fopen("BENCH_decentralized.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_decentralized.json");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"workload\": \"bronze-standard\",\n  \"pairs\": %zu,\n"
               "  \"ui_bandwidth_mbps\": %.3f,\n  \"arms\": {\n",
               kPairs, kUiBandwidthMbps);
  write_arm(out, "centralized_unlimited", unlimited, ",");
  write_arm(out, "centralized_contended", contended, ",");
  write_arm(out, "decentralized", decentralized, "");
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::puts("report written to BENCH_decentralized.json");
  return ok ? 0 : 1;
}
