# Empty dependencies file for test_pyramid.
# This may be replaced when dependencies are built.
