// Sharded enactment core: MPSC queue stress (run under TSan by the
// tsan-enactor preset), shards=1 vs shards=N equivalence on the threaded
// backend, clamping on backends without channels, mid-run cancellation on a
// sharded service, pin policies, the redesigned RunHandle waiting API, and
// the null-handle regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "data/invocation_cache.hpp"
#include "data/replica_catalog.hpp"
#include "enactor/manifest.hpp"
#include "enactor/run_request.hpp"
#include "enactor/sim_backend.hpp"
#include "enactor/threaded_backend.hpp"
#include "grid/grid.hpp"
#include "service/run_service.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/mpsc_queue.hpp"
#include "workflow/graph.hpp"

namespace moteur::service {
namespace {

using services::FunctionalService;
using services::Inputs;
using services::Result;

// ---------------------------------------------------------------------------
// MpscQueue
// ---------------------------------------------------------------------------

struct Item {
  std::size_t producer;
  std::size_t seq;
};

TEST(MpscQueue, ManyProducersPreservePerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 5000;
  MpscQueue<Item> queue;

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) queue.push(Item{p, i});
    });
  }

  std::vector<std::size_t> next_seq(kProducers, 0);
  std::size_t received = 0;
  std::vector<Item> batch;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    if (queue.drain(batch) == 0) {
      queue.wait(std::nullopt);
      continue;
    }
    for (const Item& item : batch) {
      ASSERT_LT(item.producer, kProducers);
      EXPECT_EQ(item.seq, next_seq[item.producer]) << "producer " << item.producer;
      ++next_seq[item.producer];
    }
    received += batch.size();
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(queue.empty());
  for (std::size_t p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

TEST(MpscQueue, NotifyWakesAnEmptyWait) {
  MpscQueue<int> queue;
  std::thread waker([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.notify();
  });
  // Returns true (woken), not by deadline, despite no items arriving.
  EXPECT_TRUE(queue.wait(std::chrono::steady_clock::now() + std::chrono::seconds(30)));
  waker.join();
}

TEST(MpscQueue, WaitHonorsDeadline) {
  MpscQueue<int> queue;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(queue.wait(deadline));
}

// ---------------------------------------------------------------------------
// RunHandle API
// ---------------------------------------------------------------------------

TEST(RunHandle, DefaultConstructedHandleHasEmptySentinels) {
  RunHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_TRUE(handle.id().empty());       // used to dereference a null record
  EXPECT_TRUE(handle.labels().empty());   // likewise
}

// ---------------------------------------------------------------------------
// Sharded RunService on the threaded backend
// ---------------------------------------------------------------------------

workflow::Workflow chain(std::size_t stages) {
  workflow::Workflow wf("chain");
  wf.add_source("src");
  std::string prev = "src";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string name = "p" + std::to_string(i);
    wf.add_processor(name, {"in"}, {"out"});
    wf.link(prev, "out", name, "in");
    prev = name;
  }
  wf.add_sink("sink");
  wf.link(prev, "out", "sink", "in");
  return wf;
}

data::InputDataSet items(std::size_t count) {
  data::InputDataSet ds;
  ds.declare_input("src");
  for (std::size_t j = 0; j < count; ++j) ds.add_item("src", "item" + std::to_string(j));
  return ds;
}

/// Stateless pass-through services p0..p{stages-1}; optional per-invocation
/// sleep and a shared invocation counter.
void add_chain_services(services::ServiceRegistry& registry, std::size_t stages,
                        std::atomic<std::size_t>* counter = nullptr,
                        std::chrono::milliseconds sleep = {}) {
  for (std::size_t i = 0; i < stages; ++i) {
    registry.add(std::make_shared<FunctionalService>(
        "p" + std::to_string(i), std::vector<std::string>{"in"},
        std::vector<std::string>{"out"}, [counter, sleep](const Inputs& in) {
          if (sleep.count() != 0) std::this_thread::sleep_for(sleep);
          if (counter != nullptr) counter->fetch_add(1);
          Result result;
          result.outputs["out"].payload = 0;
          result.outputs["out"].repr = "out:" + in.at("in").repr();
          return result;
        }));
  }
}

struct RunOutcome {
  std::size_t invocations = 0;
  std::size_t failures = 0;
  std::vector<std::string> sink_reprs;  // sorted
};

std::map<std::string, RunOutcome> enact(std::size_t shards, std::size_t runs,
                                        std::size_t stages, std::size_t n_items,
                                        std::vector<ShardStats>* stats_out = nullptr) {
  enactor::ThreadedBackend backend(4);
  services::ServiceRegistry registry;
  add_chain_services(registry, stages);

  RunServiceConfig config;
  config.admission.max_active = 8;
  config.admission.max_inflight = 16;
  config.sharding.shards = shards;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);
  EXPECT_EQ(service.shards(), shards);  // threaded backend supports channels

  std::vector<enactor::RunRequest> requests;
  for (std::size_t i = 0; i < runs; ++i) {
    enactor::RunRequest request;
    request.name = "run-" + std::to_string(i);
    request.workflow = chain(stages);
    request.inputs = items(n_items);
    requests.push_back(std::move(request));
  }
  auto handles = service.submit_all(std::move(requests));
  service.wait_idle();

  std::map<std::string, RunOutcome> outcomes;
  for (const auto& handle : handles) {
    EXPECT_EQ(handle.wait(), RunState::kFinished) << handle.id() << ": " << handle.error();
    const auto& result = handle.result();
    RunOutcome outcome;
    outcome.invocations = result.invocations();
    outcome.failures = result.failures();
    for (const auto& [sink, tokens] : result.sink_outputs) {
      for (const auto& token : tokens) outcome.sink_reprs.push_back(token.repr());
    }
    std::sort(outcome.sink_reprs.begin(), outcome.sink_reprs.end());
    outcomes[handle.id()] = std::move(outcome);
  }
  if (stats_out != nullptr) *stats_out = service.shard_stats();
  return outcomes;
}

TEST(ShardedRunService, FourShardsMatchSingleShardRunForRun) {
  constexpr std::size_t kRuns = 12, kStages = 3, kItems = 6;
  std::vector<ShardStats> stats1, stats4;
  const auto single = enact(1, kRuns, kStages, kItems, &stats1);
  const auto sharded = enact(4, kRuns, kStages, kItems, &stats4);

  ASSERT_EQ(single.size(), kRuns);
  ASSERT_EQ(sharded.size(), kRuns);
  for (const auto& [id, expected] : single) {
    ASSERT_TRUE(sharded.count(id)) << id;
    const RunOutcome& got = sharded.at(id);
    EXPECT_EQ(got.invocations, expected.invocations) << id;
    EXPECT_EQ(got.failures, expected.failures) << id;
    EXPECT_EQ(got.sink_reprs, expected.sink_reprs) << id;
  }

  // Per-shard counters sum to identical totals in both configurations.
  const auto totals = [](const std::vector<ShardStats>& stats) {
    std::pair<std::uint64_t, std::uint64_t> t{0, 0};
    for (const auto& s : stats) {
      t.first += s.runs;
      t.second += s.invocations;
    }
    return t;
  };
  ASSERT_EQ(stats1.size(), 1u);
  ASSERT_EQ(stats4.size(), 4u);
  EXPECT_EQ(totals(stats1), totals(stats4));
  EXPECT_EQ(totals(stats4).first, kRuns);
  EXPECT_EQ(totals(stats4).second, kRuns * kStages * kItems);
}

TEST(ShardedRunService, BackendWithoutChannelsClampsToOneShard) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::constant(5.0, 4096, 7));
  enactor::SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  RunServiceConfig config;
  config.sharding.shards = 4;  // the simulator cannot be multi-driven
  RunService service(backend, registry, config);
  EXPECT_EQ(service.shards(), 1u);
}

TEST(ShardedRunService, CancellationMidRunOnShardedService) {
  enactor::ThreadedBackend backend(4);
  services::ServiceRegistry registry;
  std::atomic<std::size_t> invoked{0};
  add_chain_services(registry, 2, &invoked, std::chrono::milliseconds(5));

  RunServiceConfig config;
  config.admission.max_active = 8;
  config.admission.max_inflight = 4;  // most submissions queue in the gates
  config.sharding.shards = 4;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);
  ASSERT_EQ(service.shards(), 4u);

  std::vector<enactor::RunRequest> requests;
  for (std::size_t i = 0; i < 4; ++i) {
    enactor::RunRequest request;
    request.name = "victim-" + std::to_string(i);
    request.workflow = chain(2);
    request.inputs = items(64);
    requests.push_back(std::move(request));
  }
  auto handles = service.submit_all(std::move(requests));

  // Let the runs make real progress, then cancel them all mid-flight.
  while (invoked.load() < 8) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (auto& handle : handles) handle.cancel();

  constexpr std::size_t kTotal = 4 * 2 * 64;
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait(), RunState::kCancelled) << handle.id();
    // Partial result: cancelled well before the full item set completed.
    EXPECT_LT(handle.result().invocations(), 2 * 64u) << handle.id();
  }
  EXPECT_LT(invoked.load(), kTotal);
  service.wait_idle();
}

TEST(ShardedRunService, CacheInvalidationAndCatalogChurnDuringShardedRuns) {
  // Run under TSan by the tsan-enactor preset: shards enacting through the
  // shared InvocationCache while antagonist threads hammer cache
  // invalidation and replica-catalog failover bookkeeping (register /
  // invalidate / availability flips) the whole time. Results must stay
  // complete and correct regardless of which entries the antagonists evict.
  enactor::ThreadedBackend backend(4);
  services::ServiceRegistry registry;
  add_chain_services(registry, 2, nullptr, std::chrono::milliseconds(1));

  RunServiceConfig config;
  config.admission.max_active = 8;
  config.admission.max_inflight = 16;
  config.sharding.shards = 4;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  config.defaults.policy.cache = true;
  RunService service(backend, registry, config);
  ASSERT_EQ(service.shards(), 4u);

  // The shared cache is materialized lazily by the first cached run.
  {
    enactor::RunRequest warmup;
    warmup.name = "warmup";
    warmup.workflow = chain(2);
    warmup.inputs = items(2);
    auto handle = service.submit(std::move(warmup));
    ASSERT_EQ(handle.wait(), RunState::kFinished);
  }
  data::InvocationCache* cache = service.invocation_cache();
  ASSERT_NE(cache, nullptr);
  data::ReplicaCatalog catalog;  // shared failover bookkeeping under churn

  std::atomic<bool> stop{false};
  std::thread cache_antagonist([&] {
    std::size_t n = 0;
    while (!stop.load()) {
      const std::string key =
          data::InvocationCache::cache_key(n % 7, {{"in", n}});
      cache->invalidate(key, "antagonist");
      cache->peek(key);
      (void)cache->entry_count();
      (void)cache->totals();
      ++n;
    }
  });
  std::thread catalog_antagonist([&] {
    std::size_t n = 0;
    while (!stop.load()) {
      const std::string lfn = "lfn://" + std::to_string(n % 16);
      const std::string se = "se-" + std::to_string(n % 3);
      catalog.register_replica(lfn, se, 1.0);
      catalog.set_se_available(se, n % 2 == 0);
      (void)catalog.locate(lfn);
      (void)catalog.se_available(se);
      catalog.invalidate_replica(lfn, se);
      ++n;
    }
  });

  constexpr std::size_t kRuns = 8, kStages = 2, kItems = 16;
  std::vector<enactor::RunRequest> requests;
  for (std::size_t i = 0; i < kRuns; ++i) {
    enactor::RunRequest request;
    request.name = "churn-" + std::to_string(i);
    request.workflow = chain(kStages);
    request.inputs = items(kItems);
    requests.push_back(std::move(request));
  }
  auto handles = service.submit_all(std::move(requests));
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait(), RunState::kFinished) << handle.id();
    EXPECT_EQ(handle.result().failures(), 0u) << handle.id();
    std::size_t sink_tokens = 0;
    for (const auto& [sink, tokens] : handle.result().sink_outputs) {
      sink_tokens += tokens.size();
    }
    EXPECT_EQ(sink_tokens, kItems) << handle.id();
  }
  service.wait_idle();
  stop.store(true);
  cache_antagonist.join();
  catalog_antagonist.join();

  // The catalog survived the churn with a consistent view: every replica the
  // antagonist left behind is locatable, and the counters kept pace.
  EXPECT_LE(catalog.replica_count(), 16u * 3u);
  EXPECT_GT(catalog.invalidation_count(), 0u);
}

TEST(ShardedRunService, LeastLoadedPinSpreadsABatch) {
  enactor::ThreadedBackend backend(2);
  services::ServiceRegistry registry;
  add_chain_services(registry, 1);

  RunServiceConfig config;
  config.sharding.shards = 4;
  config.sharding.pin = PinPolicy::kLeastLoaded;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);

  std::vector<enactor::RunRequest> requests;
  for (std::size_t i = 0; i < 8; ++i) {
    enactor::RunRequest request;
    request.name = "spread-" + std::to_string(i);
    request.workflow = chain(1);
    request.inputs = items(2);
    requests.push_back(std::move(request));
  }
  service.submit_all(std::move(requests));
  service.wait_idle();

  // In-batch tentative accounting: one batch of 8 lands 2 runs per shard.
  for (const auto& stats : service.shard_stats()) {
    EXPECT_EQ(stats.runs, 2u) << "shard " << stats.shard;
  }
}

TEST(ShardedRunService, WaitPrimitives) {
  enactor::ThreadedBackend backend(2);
  services::ServiceRegistry registry;
  add_chain_services(registry, 1, nullptr, std::chrono::milliseconds(3));

  RunServiceConfig config;
  config.sharding.shards = 2;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);

  std::vector<enactor::RunRequest> requests;
  for (const char* name : {"wait-a", "wait-b"}) {
    enactor::RunRequest request;
    request.name = name;
    request.workflow = chain(1);
    request.inputs = items(8);
    requests.push_back(std::move(request));
  }
  auto handles = service.submit_all(std::move(requests));

  // wait_for with a tiny timeout observes a (most likely) non-terminal state
  // without blocking; try_result mirrors it.
  const RunState early = handles[0].wait_for(std::chrono::microseconds(1));
  if (!is_terminal(early)) EXPECT_EQ(handles[0].try_result(), nullptr);

  const std::size_t first = service.wait_any(handles);
  ASSERT_LT(first, handles.size());
  EXPECT_TRUE(is_terminal(handles[first].poll()));
  EXPECT_NE(handles[first].try_result(), nullptr);

  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait_for(std::chrono::seconds(60)), RunState::kFinished);
    EXPECT_NE(handle.try_result(), nullptr);
  }
}

TEST(ShardedRunService, WaitAnyRequiresAValidHandle) {
  enactor::ThreadedBackend backend(1);
  services::ServiceRegistry registry;
  RunService service(backend, registry, {});
  std::vector<RunHandle> invalid(3);
  EXPECT_THROW(service.wait_any(invalid), ExecutionError);
}

// ---------------------------------------------------------------------------
// Config surface: pin policy parsing + manifest round-trip
// ---------------------------------------------------------------------------

TEST(ShardingConfig, PinPolicyParsesAndPrints) {
  EXPECT_EQ(parse_pin_policy("hash"), PinPolicy::kHash);
  EXPECT_EQ(parse_pin_policy("least-loaded"), PinPolicy::kLeastLoaded);
  EXPECT_STREQ(to_string(PinPolicy::kHash), "hash");
  EXPECT_STREQ(to_string(PinPolicy::kLeastLoaded), "least-loaded");
  EXPECT_THROW(parse_pin_policy("round-robin"), ParseError);
}

TEST(ShardingConfig, ManifestRoundTripsShardingFields) {
  enactor::RunManifest manifest;
  manifest.workflow = chain(1);
  manifest.inputs = items(1);
  manifest.shards = 4;
  manifest.pin_policy = "least-loaded";
  const auto restored = enactor::RunManifest::from_xml(manifest.to_xml());
  EXPECT_EQ(restored.shards, 4u);
  EXPECT_EQ(restored.pin_policy, "least-loaded");

  enactor::RunManifest defaults;
  defaults.workflow = chain(1);
  defaults.inputs = items(1);
  const auto restored_defaults = enactor::RunManifest::from_xml(defaults.to_xml());
  EXPECT_EQ(restored_defaults.shards, 1u);
  EXPECT_EQ(restored_defaults.pin_policy, "hash");
}

}  // namespace
}  // namespace moteur::service
