#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "enactor/backend.hpp"
#include "policy/policy.hpp"
#include "policy/registry.hpp"

namespace moteur::service {

/// Fair-share admission scheduler for one shared ExecutionBackend: every
/// run's submissions funnel through the gate, which caps the number of
/// in-flight backend executions and grants queued submissions by weighted
/// round-robin across the registered runs. That is what keeps a 126-pair run
/// from monopolizing the grid's UI submission slots while a 12-pair run
/// waits: each WRR visit grants at most `weight` submissions per run before
/// moving on, so every run makes proportional progress regardless of how
/// deep its own backlog is.
///
/// Single-threaded by design: each engine shard owns one gate (its slice of
/// the service-wide in-flight cap) and every method runs on that shard's
/// worker thread — engines submit from within drive(), the shard cancels
/// between drive calls — so no locking is needed. Construct via std::make_shared —
/// completion callbacks hold a weak_ptr so backend stragglers that outlive
/// the gate are delivered without touching it.
///
/// Invariant: submissions are queued only while the in-flight count sits at
/// the cap, so a queued submission always has at least one in-flight
/// execution (or a zero-delay cancellation timer) in front of it — the
/// backend can never stall with gated work pending.
class AdmissionGate : public std::enable_shared_from_this<AdmissionGate> {
 public:
  struct Config {
    /// Concurrent backend executions across all runs; 0 = unbounded (the
    /// gate then only orders submissions, it never queues them).
    std::size_t max_inflight = 8;
    /// Default AdmissionPolicy name mapping requested run weights onto
    /// effective WRR shares (`weighted` = take them as-is, the historical
    /// behavior; `round-robin` = one grant per visit for every run).
    std::string policy = policy::kDefaultAdmission;
  };

  AdmissionGate(enactor::ExecutionBackend& backend, Config config)
      : backend_(backend), config_(std::move(config)) {}

  /// Add `run_id` to the WRR visit list with the share the AdmissionPolicy
  /// derives from `weight` (0 clamped to 1). `policy_override` names a
  /// per-run AdmissionPolicy; empty uses the gate default.
  void register_run(const std::string& run_id, std::size_t weight,
                    const std::string& policy_override = "");

  /// Drop `run_id` from the visit list. Its queue must already be empty
  /// (the run finished or was cancelled).
  void deregister_run(const std::string& run_id);

  /// Fail everything queued for `run_id` with a kDefinitive "run cancelled"
  /// outcome — delivered through zero-delay backend timers, so the failures
  /// arrive from within drive() exactly like real completions — and mark the
  /// run so later submissions fail the same way. The engine then drains
  /// normally to a partial result.
  void cancel_run(const std::string& run_id);

  /// Route one submission from `run_id`: launches immediately when capacity
  /// allows and nothing is queued, else queues for a WRR grant. The policy
  /// hints in `options` ride through to the backend at launch.
  void execute(const std::string& run_id, std::shared_ptr<services::Service> svc,
               std::vector<services::Inputs> bindings, enactor::ExecOptions options,
               enactor::ExecutionBackend::Callback on_complete);

  std::size_t inflight() const { return inflight_; }
  std::size_t queued() const { return total_queued_; }

  /// Observer invoked at each grant with the backend-time the submission
  /// spent queued in the gate (0 for immediate launches) and the granting
  /// run's effective AdmissionPolicy name — feeds the service's
  /// admission-wait histogram and the policy decision counters.
  void set_grant_observer(
      std::function<void(double wait_seconds, const std::string& policy)> observer) {
    on_grant_ = std::move(observer);
  }

 private:
  struct Pending {
    std::shared_ptr<services::Service> service;
    std::vector<services::Inputs> bindings;
    enactor::ExecOptions options;
    enactor::ExecutionBackend::Callback on_complete;
    double enqueued_at = 0.0;
    /// Effective AdmissionPolicy name of the submitting run (grant label).
    std::string policy;
  };
  struct RunQueue {
    std::size_t weight = 1;
    bool cancelled = false;
    std::string policy = policy::kDefaultAdmission;
    std::deque<Pending> queue;
  };

  policy::AdmissionPolicy& policy_for(const std::string& name);

  bool has_capacity() const {
    return config_.max_inflight == 0 || inflight_ < config_.max_inflight;
  }
  /// Grant queued submissions (WRR order) while capacity lasts.
  void pump();
  void launch(Pending pending);
  void fail_cancelled(Pending pending);

  enactor::ExecutionBackend& backend_;
  Config config_;
  std::map<std::string, RunQueue> runs_;
  std::vector<std::string> order_;  // registration order = WRR visit order
  std::size_t cursor_ = 0;          // current visit position in order_
  std::size_t grants_this_visit_ = 0;
  std::size_t inflight_ = 0;
  std::size_t total_queued_ = 0;
  std::map<std::string, std::unique_ptr<policy::AdmissionPolicy>> policies_;
  std::function<void(double, const std::string&)> on_grant_;
};

}  // namespace moteur::service
