
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/catalog.cpp" "src/services/CMakeFiles/moteur_services.dir/catalog.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/catalog.cpp.o.d"
  "/root/repo/src/services/descriptor.cpp" "src/services/CMakeFiles/moteur_services.dir/descriptor.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/descriptor.cpp.o.d"
  "/root/repo/src/services/functional_service.cpp" "src/services/CMakeFiles/moteur_services.dir/functional_service.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/functional_service.cpp.o.d"
  "/root/repo/src/services/grouped_service.cpp" "src/services/CMakeFiles/moteur_services.dir/grouped_service.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/grouped_service.cpp.o.d"
  "/root/repo/src/services/registry.cpp" "src/services/CMakeFiles/moteur_services.dir/registry.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/registry.cpp.o.d"
  "/root/repo/src/services/service.cpp" "src/services/CMakeFiles/moteur_services.dir/service.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/service.cpp.o.d"
  "/root/repo/src/services/wrapper_service.cpp" "src/services/CMakeFiles/moteur_services.dir/wrapper_service.cpp.o" "gcc" "src/services/CMakeFiles/moteur_services.dir/wrapper_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/moteur_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/moteur_xml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/moteur_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/grid/CMakeFiles/moteur_grid.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workflow/CMakeFiles/moteur_workflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/moteur_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
