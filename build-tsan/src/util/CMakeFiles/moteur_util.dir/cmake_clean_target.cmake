file(REMOVE_RECURSE
  "libmoteur_util.a"
)
