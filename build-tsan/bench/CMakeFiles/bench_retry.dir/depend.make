# Empty dependencies file for bench_retry.
# This may be replaced when dependencies are built.
