#include "registration/image3d.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace moteur::registration {

Image3D::Image3D(std::size_t nx, std::size_t ny, std::size_t nz, double spacing)
    : nx_(nx), ny_(ny), nz_(nz), spacing_(spacing), voxels_(nx * ny * nz, 0.0f) {
  MOTEUR_REQUIRE(nx >= 2 && ny >= 2 && nz >= 2, InternalError,
                 "Image3D: each dimension must be >= 2");
  MOTEUR_REQUIRE(spacing > 0.0, InternalError, "Image3D: spacing must be > 0");
}

float& Image3D::at(std::size_t i, std::size_t j, std::size_t k) {
  return voxels_[index(i, j, k)];
}

float Image3D::at(std::size_t i, std::size_t j, std::size_t k) const {
  return voxels_[index(i, j, k)];
}

Vec3 Image3D::position(std::size_t i, std::size_t j, std::size_t k) const {
  return Vec3{static_cast<double>(i) * spacing_, static_cast<double>(j) * spacing_,
              static_cast<double>(k) * spacing_};
}

Vec3 Image3D::extent() const {
  return Vec3{static_cast<double>(nx_ - 1) * spacing_,
              static_cast<double>(ny_ - 1) * spacing_,
              static_cast<double>(nz_ - 1) * spacing_};
}

double Image3D::sample(const Vec3& world) const {
  const double fx = world.x / spacing_;
  const double fy = world.y / spacing_;
  const double fz = world.z / spacing_;
  if (fx < 0.0 || fy < 0.0 || fz < 0.0) return 0.0;
  if (fx > static_cast<double>(nx_ - 1) || fy > static_cast<double>(ny_ - 1) ||
      fz > static_cast<double>(nz_ - 1)) {
    return 0.0;
  }
  // Clamp the base cell so positions exactly on the upper faces interpolate
  // within the last cell instead of reading as outside.
  const auto i0 = std::min(static_cast<std::size_t>(fx), nx_ - 2);
  const auto j0 = std::min(static_cast<std::size_t>(fy), ny_ - 2);
  const auto k0 = std::min(static_cast<std::size_t>(fz), nz_ - 2);
  const double dx = fx - static_cast<double>(i0);
  const double dy = fy - static_cast<double>(j0);
  const double dz = fz - static_cast<double>(k0);

  const auto v = [&](std::size_t di, std::size_t dj, std::size_t dk) {
    return static_cast<double>(at(i0 + di, j0 + dj, k0 + dk));
  };
  const double c00 = v(0, 0, 0) * (1 - dx) + v(1, 0, 0) * dx;
  const double c10 = v(0, 1, 0) * (1 - dx) + v(1, 1, 0) * dx;
  const double c01 = v(0, 0, 1) * (1 - dx) + v(1, 0, 1) * dx;
  const double c11 = v(0, 1, 1) * (1 - dx) + v(1, 1, 1) * dx;
  const double c0 = c00 * (1 - dy) + c10 * dy;
  const double c1 = c01 * (1 - dy) + c11 * dy;
  return c0 * (1 - dz) + c1 * dz;
}

Vec3 Image3D::gradient(std::size_t i, std::size_t j, std::size_t k) const {
  const auto axis = [&](std::size_t coord, std::size_t n, auto value) -> double {
    if (coord == 0) return (value(1) - value(0)) / spacing_;
    if (coord + 1 >= n) return (value(coord) - value(coord - 1)) / spacing_;
    return (value(coord + 1) - value(coord - 1)) / (2.0 * spacing_);
  };
  return Vec3{
      axis(i, nx_, [&](std::size_t a) { return static_cast<double>(at(a, j, k)); }),
      axis(j, ny_, [&](std::size_t a) { return static_cast<double>(at(i, a, k)); }),
      axis(k, nz_, [&](std::size_t a) { return static_cast<double>(at(i, j, a)); })};
}

Image3D Image3D::resampled(const RigidTransform& transform) const {
  Image3D out(nx_, ny_, nz_, spacing_);
  const RigidTransform inverse = transform.inverse();
  for (std::size_t k = 0; k < nz_; ++k) {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        out.at(i, j, k) = static_cast<float>(sample(inverse.apply(position(i, j, k))));
      }
    }
  }
  return out;
}

Image3D Image3D::downsampled() const {
  const std::size_t hx = std::max<std::size_t>(2, nx_ / 2);
  const std::size_t hy = std::max<std::size_t>(2, ny_ / 2);
  const std::size_t hz = std::max<std::size_t>(2, nz_ / 2);
  Image3D out(hx, hy, hz, spacing_ * 2.0);
  for (std::size_t k = 0; k < hz; ++k) {
    for (std::size_t j = 0; j < hy; ++j) {
      for (std::size_t i = 0; i < hx; ++i) {
        double sum = 0.0;
        int count = 0;
        for (std::size_t dk = 0; dk < 2; ++dk) {
          for (std::size_t dj = 0; dj < 2; ++dj) {
            for (std::size_t di = 0; di < 2; ++di) {
              const std::size_t si = 2 * i + di, sj = 2 * j + dj, sk = 2 * k + dk;
              if (si < nx_ && sj < ny_ && sk < nz_) {
                sum += static_cast<double>(at(si, sj, sk));
                ++count;
              }
            }
          }
        }
        out.at(i, j, k) = static_cast<float>(sum / std::max(count, 1));
      }
    }
  }
  return out;
}

double Image3D::min_value() const {
  return static_cast<double>(*std::min_element(voxels_.begin(), voxels_.end()));
}

double Image3D::max_value() const {
  return static_cast<double>(*std::max_element(voxels_.begin(), voxels_.end()));
}

double Image3D::mean_value() const {
  double sum = 0.0;
  for (float v : voxels_) sum += static_cast<double>(v);
  return sum / static_cast<double>(voxels_.size());
}

double normalized_cross_correlation(const Image3D& a, const Image3D& b) {
  MOTEUR_REQUIRE(a.voxel_count() == b.voxel_count(), InternalError,
                 "NCC: image shapes differ");
  const double ma = a.mean_value();
  const double mb = b.mean_value();
  double num = 0.0, da = 0.0, db = 0.0;
  const auto& va = a.voxels();
  const auto& vb = b.voxels();
  for (std::size_t i = 0; i < va.size(); ++i) {
    const double xa = static_cast<double>(va[i]) - ma;
    const double xb = static_cast<double>(vb[i]) - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace moteur::registration
