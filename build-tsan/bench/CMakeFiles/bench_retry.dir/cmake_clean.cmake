file(REMOVE_RECURSE
  "CMakeFiles/bench_retry.dir/bench_retry.cpp.o"
  "CMakeFiles/bench_retry.dir/bench_retry.cpp.o.d"
  "bench_retry"
  "bench_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
