#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "enactor/enactor.hpp"
#include "enactor/run_request.hpp"

namespace moteur::obs {
class RunRecorder;
}  // namespace moteur::obs

namespace moteur::service {

/// Lifecycle of one run inside a RunService.
/// kQueued -> kRunning -> {kFinished, kFailed, kCancelled}; a queued run
/// cancelled before admission goes straight to kCancelled.
enum class RunState { kQueued, kRunning, kFinished, kFailed, kCancelled };

const char* to_string(RunState s);
bool is_terminal(RunState s);

namespace detail {
struct RunRecord;
}  // namespace detail

/// Caller-side view of one submitted run. Cheap to copy; all methods are
/// thread-safe and may be called from any thread while the service's worker
/// advances the run. A default-constructed handle is invalid.
class RunHandle {
 public:
  RunHandle() = default;

  bool valid() const { return rec_ != nullptr; }
  const std::string& id() const;
  const std::map<std::string, std::string>& labels() const;

  /// Current state, without blocking.
  RunState poll() const;

  /// Block until the run reaches a terminal state; returns it.
  RunState wait() const;

  /// Request cancellation. Asynchronous: a queued run is dropped before it
  /// starts; a running run stops submitting, its queued submissions fail
  /// definitively, and it drains to a partial result. Idempotent; a no-op
  /// once the run is terminal.
  void cancel();

  /// The final result. Valid once the run is terminal: complete for
  /// kFinished, partial for kCancelled and deadlock-failed runs, default
  /// for runs that failed before starting. Blocks like wait().
  const enactor::EnactmentResult& result() const;

  /// Failure message for kFailed runs (empty otherwise). Blocks like wait().
  const std::string& error() const;

 private:
  friend class RunService;
  explicit RunHandle(std::shared_ptr<detail::RunRecord> rec) : rec_(std::move(rec)) {}

  std::shared_ptr<detail::RunRecord> rec_;
};

struct RunServiceConfig {
  /// Runs enacted concurrently; further submissions wait in the queue.
  std::size_t max_active_runs = 4;
  /// Concurrent backend executions across all active runs (the admission
  /// gate's cap); 0 = unbounded.
  std::size_t max_inflight_submissions = 8;
  /// Policy for requests that carry none of their own.
  enactor::EnactmentPolicy default_policy;
};

/// Multi-tenant enactment: one RunService owns one ExecutionBackend and one
/// ServiceRegistry and accepts many concurrent runs, each described by a
/// RunRequest and observed through a RunHandle. A single worker thread
/// drives the shared backend with every admitted run's engine interleaved on
/// it; a fair-share AdmissionGate (weighted round-robin, bounded in-flight
/// submissions) keeps large runs from starving small ones, and one
/// service-owned CeHealth ledger gives all tenants a common view of grid
/// health — per-run breaker ledgers would deadlock in half-open, since
/// another tenant's job may be the probe.
///
/// Observability: subscribers and the recorder see every run's events, told
/// apart by RunEvent::run_id; service-scope events (shared-breaker
/// transitions) carry an empty run_id. The service additionally maintains
/// service-wide series: active/queued run gauges, admission-wait histogram,
/// and terminal-state run counters.
///
/// Thread model: submit/cancel/wait may be called from any thread; all
/// backend access happens on the worker thread. The backend and registry
/// must outlive the service.
class RunService {
 public:
  RunService(enactor::ExecutionBackend& backend, services::ServiceRegistry& registry,
             RunServiceConfig config = {});
  ~RunService();

  RunService(const RunService&) = delete;
  RunService& operator=(const RunService&) = delete;

  /// Enqueue one run. The request's `name` becomes the run id when it is
  /// non-empty and unused; otherwise an id "run-<n>" is generated.
  RunHandle submit(enactor::RunRequest request);

  /// Enqueue a batch atomically: all runs enter the queue before the worker
  /// may admit any of them, making admission order deterministic under the
  /// simulated backend (individually submitted runs race sim progression).
  std::vector<RunHandle> submit_all(std::vector<enactor::RunRequest> requests);

  /// Subscribe to every run's event stream (run_id tells them apart).
  /// Call before submitting; subscribers run on the worker thread.
  void add_event_subscriber(enactor::EventSubscriber subscriber);

  /// Attach the standard recorder to every run plus the service-wide
  /// series. Call before submitting; not owned.
  void set_recorder(obs::RunRecorder* recorder);

  /// The invocation cache shared by every cache-enabled run of this service
  /// (created lazily by the first such run; null until then). Per-run
  /// hit/miss statistics are keyed by run id — see
  /// data::InvocationCache::stats.
  data::InvocationCache* invocation_cache();

  /// Block until no run is queued or active.
  void wait_idle();

  /// Cancel everything still queued or running, drain, and join the worker.
  /// Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace moteur::service
