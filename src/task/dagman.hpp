#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "grid/grid.hpp"
#include "task/task_graph.hpp"

namespace moteur::task {

/// Condor-DAGMan-style executor (the emblematic task-based workflow manager,
/// paper §2.1): submits every task whose parents are done, with no other
/// throttling — in the task-based approach data and service parallelism are
/// both subsumed by plain workflow parallelism over the expanded DAG (§3.3,
/// §3.4).
struct DagRunResult {
  double makespan = 0.0;
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
  /// Completion time of each task.
  std::map<std::string, double> completion_times;
};

/// Runs the whole DAG on the simulated grid; returns when every task is
/// terminal. Tasks downstream of a definitively-failed task are not run.
DagRunResult run_dag(const TaskGraph& graph, grid::Grid& grid);

}  // namespace moteur::task
