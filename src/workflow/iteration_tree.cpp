#include "workflow/iteration_tree.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace moteur::workflow {

// ---------------------------------------------------------------------------
// IterationNode
// ---------------------------------------------------------------------------

IterationNode IterationNode::leaf(std::string port_name) {
  IterationNode node;
  node.kind = Kind::kPort;
  node.port = std::move(port_name);
  return node;
}

IterationNode IterationNode::dot(std::vector<IterationNode> children) {
  IterationNode node;
  node.kind = Kind::kDot;
  node.children = std::move(children);
  return node;
}

IterationNode IterationNode::cross(std::vector<IterationNode> children) {
  IterationNode node;
  node.kind = Kind::kCross;
  node.children = std::move(children);
  return node;
}

std::vector<std::string> IterationNode::ports() const {
  if (kind == Kind::kPort) return {port};
  std::vector<std::string> out;
  for (const auto& child : children) {
    const auto sub = child.ports();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void IterationNode::validate() const {
  if (kind == Kind::kPort) {
    MOTEUR_REQUIRE(!port.empty(), GraphError, "iteration tree leaf without a port name");
    MOTEUR_REQUIRE(children.empty(), GraphError, "iteration tree leaf with children");
  } else {
    MOTEUR_REQUIRE(!children.empty(), GraphError,
                   "iteration tree combinator without children");
    for (const auto& child : children) child.validate();
  }
  const auto all = ports();
  const std::set<std::string> unique(all.begin(), all.end());
  MOTEUR_REQUIRE(unique.size() == all.size(), GraphError,
                 "iteration tree references a port twice");
}

std::string IterationNode::to_string() const {
  if (kind == Kind::kPort) return port;
  std::string out = kind == Kind::kDot ? "dot(" : "cross(";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i != 0) out += ",";
    out += children[i].to_string();
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// CompositeIterationBuffer
// ---------------------------------------------------------------------------

namespace {

/// Internal payload of a combinator's intermediate token: the flattened
/// member tokens in port order.
struct CompositeGroup {
  std::vector<data::Token> members;
};

std::vector<data::Token> flatten(const data::Token& token) {
  if (token.holds<std::shared_ptr<const CompositeGroup>>()) {
    return token.as<std::shared_ptr<const CompositeGroup>>()->members;
  }
  return {token};
}

}  // namespace

struct CompositeIterationBuffer::Stage {
  IterationNode::Kind kind;
  std::vector<const IterationNode*> children;  // aligned with slot names
  IterationBuffer buffer;
  Stage* parent = nullptr;
  std::string parent_slot;

  Stage(IterationNode::Kind k, std::vector<const IterationNode*> kids,
        std::vector<std::string> slots)
      : kind(k),
        children(std::move(kids)),
        buffer(k == IterationNode::Kind::kDot ? IterationStrategy::kDot
                                              : IterationStrategy::kCross,
               std::move(slots)) {}
};

CompositeIterationBuffer::~CompositeIterationBuffer() = default;

CompositeIterationBuffer::CompositeIterationBuffer(IterationNode tree)
    : tree_(std::move(tree)) {
  tree_.validate();
  ports_ = tree_.ports();
  for (const auto& port : ports_) closed_[port] = false;
  MOTEUR_REQUIRE(tree_.kind != IterationNode::Kind::kPort, GraphError,
                 "iteration tree root must be a combinator");
  root_ = build(tree_);
}

CompositeIterationBuffer::Stage* CompositeIterationBuffer::build(
    const IterationNode& node) {
  std::vector<std::string> slots;
  std::vector<const IterationNode*> kids;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    slots.push_back("c" + std::to_string(i));
    kids.push_back(&node.children[i]);
  }
  // Children first, so stages_ is in bottom-up (pump) order.
  std::vector<Stage*> child_stages(node.children.size(), nullptr);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i].kind != IterationNode::Kind::kPort) {
      child_stages[i] = build(node.children[i]);
    }
  }
  stages_.push_back(std::make_unique<Stage>(node.kind, std::move(kids), slots));
  Stage* stage = stages_.back().get();
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i].kind == IterationNode::Kind::kPort) {
      leaf_routes_.emplace(node.children[i].port, std::make_pair(stage, slots[i]));
    } else {
      child_stages[i]->parent = stage;
      child_stages[i]->parent_slot = slots[i];
    }
  }
  return stage;
}

void CompositeIterationBuffer::push(const std::string& port, data::Token token) {
  const auto route = leaf_routes_.find(port);
  MOTEUR_REQUIRE(route != leaf_routes_.end(), EnactmentError,
                 "iteration tree has no port '" + port + "'");
  MOTEUR_REQUIRE(!closed_.at(port), EnactmentError, "push on closed port '" + port + "'");
  route->second.first->buffer.push(route->second.second, std::move(token));
  pump();
}

void CompositeIterationBuffer::pump() {
  // Bottom-up: every stage's completed tuples become composite tokens on its
  // parent slot; the root's tuples flatten into firing tuples.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& stage : stages_) {
      for (auto& tuple : stage->buffer.drain_ready()) {
        progress = true;
        if (stage.get() == root_) {
          Tuple flat;
          flat.index = tuple.index;
          for (const auto& member : tuple.tokens) {
            const auto leaves = flatten(member);
            flat.tokens.insert(flat.tokens.end(), leaves.begin(), leaves.end());
          }
          ready_.push_back(std::move(flat));
          continue;
        }
        auto group = std::make_shared<const CompositeGroup>([&] {
          CompositeGroup g;
          for (const auto& member : tuple.tokens) {
            const auto leaves = flatten(member);
            g.members.insert(g.members.end(), leaves.begin(), leaves.end());
          }
          return g;
        }());
        const data::Token composite = data::Token::derived(
            "iteration", "group", tuple.tokens, tuple.index,
            std::shared_ptr<const CompositeGroup>(group),
            "group" + data::to_string(tuple.index));
        stage->parent->buffer.push(stage->parent_slot, composite);
      }
    }
  }

  // Closure propagation: a combinator's slot closes once its child stage is
  // fully closed (all child slots closed) — after the drains above, nothing
  // more can come out of it.
  for (auto& stage : stages_) {
    if (stage->parent == nullptr) continue;
    if (stage->buffer.all_closed() &&
        !stage->parent->buffer.is_closed(stage->parent_slot)) {
      stage->parent->buffer.close(stage->parent_slot);
    }
  }
}

void CompositeIterationBuffer::close(const std::string& port) {
  const auto route = leaf_routes_.find(port);
  MOTEUR_REQUIRE(route != leaf_routes_.end(), EnactmentError,
                 "iteration tree has no port '" + port + "'");
  if (closed_.at(port)) return;
  closed_[port] = true;
  route->second.first->buffer.close(route->second.second);
  pump();
}

bool CompositeIterationBuffer::is_closed(const std::string& port) const {
  const auto it = closed_.find(port);
  MOTEUR_REQUIRE(it != closed_.end(), EnactmentError,
                 "iteration tree has no port '" + port + "'");
  return it->second;
}

bool CompositeIterationBuffer::all_closed() const {
  return std::all_of(closed_.begin(), closed_.end(),
                     [](const auto& entry) { return entry.second; });
}

std::vector<CompositeIterationBuffer::Tuple> CompositeIterationBuffer::drain_ready() {
  std::vector<Tuple> out;
  out.swap(ready_);
  return out;
}

bool CompositeIterationBuffer::has_ready() const { return !ready_.empty(); }

std::size_t CompositeIterationBuffer::pending_tokens() const {
  std::size_t total = 0;
  for (const auto& stage : stages_) total += stage->buffer.pending_tokens();
  return total;
}

}  // namespace moteur::workflow
