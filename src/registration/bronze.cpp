#include "registration/bronze.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace moteur::registration {

namespace {

constexpr double kRadiansToDegrees = 180.0 / M_PI;

AlgorithmAccuracy accuracy_of(const std::string& algorithm,
                              const std::vector<RigidTransform>& estimates,
                              const std::vector<RigidTransform>& references) {
  RunningStats rotation, translation;
  for (std::size_t pair = 0; pair < estimates.size(); ++pair) {
    const TransformError err = transform_error(estimates[pair], references[pair]);
    rotation.add(err.rotation_radians * kRadiansToDegrees);
    translation.add(err.translation);
  }
  AlgorithmAccuracy out;
  out.algorithm = algorithm;
  out.rotation_mean_degrees = rotation.mean();
  out.rotation_stddev_degrees = rotation.stddev();
  out.translation_mean = translation.mean();
  out.translation_stddev = translation.stddev();
  return out;
}

}  // namespace

BronzeResult evaluate_bronze_standard(const std::vector<AlgorithmEstimates>& estimates) {
  MOTEUR_REQUIRE(estimates.size() >= 2, InternalError,
                 "bronze standard needs at least two algorithms");
  const std::size_t pairs = estimates.front().per_pair.size();
  MOTEUR_REQUIRE(pairs > 0, InternalError, "bronze standard: no image pairs");
  for (const auto& algorithm : estimates) {
    MOTEUR_REQUIRE(algorithm.per_pair.size() == pairs, InternalError,
                   "bronze standard: algorithm '" + algorithm.algorithm +
                       "' has a different pair count");
  }

  BronzeResult result;
  result.bronze_standard.reserve(pairs);
  for (std::size_t pair = 0; pair < pairs; ++pair) {
    std::vector<RigidTransform> all;
    all.reserve(estimates.size());
    for (const auto& algorithm : estimates) all.push_back(algorithm.per_pair[pair]);
    result.bronze_standard.push_back(average(all));
  }

  // Each algorithm is scored against the mean of all the OTHERS, so its own
  // errors do not contaminate its reference.
  for (std::size_t a = 0; a < estimates.size(); ++a) {
    std::vector<RigidTransform> reference_of_others;
    reference_of_others.reserve(pairs);
    for (std::size_t pair = 0; pair < pairs; ++pair) {
      std::vector<RigidTransform> others;
      others.reserve(estimates.size() - 1);
      for (std::size_t b = 0; b < estimates.size(); ++b) {
        if (b != a) others.push_back(estimates[b].per_pair[pair]);
      }
      reference_of_others.push_back(average(others));
    }
    result.accuracies.push_back(accuracy_of(estimates[a].algorithm,
                                            estimates[a].per_pair, reference_of_others));
  }
  return result;
}

std::vector<AlgorithmAccuracy> evaluate_against_truth(
    const std::vector<AlgorithmEstimates>& estimates,
    const std::vector<RigidTransform>& truths) {
  std::vector<AlgorithmAccuracy> out;
  out.reserve(estimates.size());
  for (const auto& algorithm : estimates) {
    MOTEUR_REQUIRE(algorithm.per_pair.size() == truths.size(), InternalError,
                   "evaluate_against_truth: pair count mismatch for '" +
                       algorithm.algorithm + "'");
    out.push_back(accuracy_of(algorithm.algorithm, algorithm.per_pair, truths));
  }
  return out;
}

}  // namespace moteur::registration
