#pragma once

#include <string>
#include <utility>
#include <vector>

#include "workflow/graph.hpp"

namespace moteur::workflow {

/// The job-grouping rewrite (paper §3.6): merges sequential service
/// processors into virtual grouped processors so the enactor can submit one
/// grid job — paying one submission/scheduling/queuing overhead — for a whole
/// chain of codes. Enabled by the generic wrapper service, which lets the
/// enactor compose member command lines into a single submission.
///
/// Merge rule for a pair (A, B) joined by a data link A -> B:
///  - both are plain dot-iteration service processors, neither synchronizing
///    and neither touched by feedback links;
///  - every OTHER input of B is produced by A itself or by a strict ancestor
///    of A (so B has nothing left to wait for once A's inputs are chosen, and
///    contracting {A, B} cannot create a cycle);
///  - every OTHER consumer of A is a descendant of B (a grouped job only
///    registers outputs when the whole chain completes, so merging must not
///    delay a third party that was not already waiting on B's subtree).
///
/// This captures the paper's Bronze-Standard groups — crestLines+crestMatch
/// (crestMatch's other inputs are the workflow sources feeding crestLines)
/// and PFMatchICP+PFRegister — and generalizes to chains by repeated merging.
///
/// Rewrite shape: the merged processor's ports are qualified as
/// "<original-processor>/<port>"; links between the members become
/// `internal_links`; every external link is rewired to the qualified port.

/// Qualified-port helpers. Original processor names must not contain '/'.
std::string qualify_port(const Processor& processor, const std::string& port);
std::pair<std::string, std::string> split_grouped_port(const std::string& qualified);

struct GroupingReport {
  /// Ordered member lists of every grouped processor formed.
  std::vector<std::vector<std::string>> groups;
  std::size_t merges = 0;
};

/// Whether the pair (from, to) is mergeable under the rule above.
bool can_group(const Workflow& workflow, const std::string& from, const std::string& to);

/// Apply the rewrite to a fixpoint and return the optimized workflow.
/// The input workflow is not modified.
Workflow group_sequential_processors(const Workflow& workflow,
                                     GroupingReport* report = nullptr);

}  // namespace moteur::workflow
