#include "xml/xml.hpp"

#include <cctype>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace moteur::xml {

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

void Node::set_attribute(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(key, std::move(value));
}

bool Node::has_attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return true;
  }
  return false;
}

std::optional<std::string> Node::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

const std::string& Node::required_attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  throw ParseError("element <" + name_ + "> is missing attribute '" + key + "'");
}

Node& Node::add_child(std::string name) {
  children_.push_back(std::make_unique<Node>(std::move(name)));
  return *children_.back();
}

Node& Node::adopt(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Node* Node::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

const Node& Node::required_child(std::string_view name) const {
  const Node* c = child(name);
  if (c == nullptr) {
    throw ParseError("element <" + name_ + "> is missing child <" + std::string(name) + ">");
  }
  return *c;
}

std::vector<const Node*> Node::children_named(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Node::to_string(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << '<' << name_;
  for (const auto& [k, v] : attributes_) {
    os << ' ' << k << "=\"" << escape_attribute(v) << '"';
  }
  const std::string text = trim(text_);
  if (children_.empty() && text.empty()) {
    os << "/>\n";
    return os.str();
  }
  os << '>';
  if (!text.empty()) os << escape_text(text);
  if (!children_.empty()) {
    os << '\n';
    for (const auto& c : children_) os << c->to_string(indent + 1);
    os << pad;
  }
  os << "</" << name_ << ">\n";
  return os.str();
}

std::string Document::to_string() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root_->to_string();
}

// ---------------------------------------------------------------------------
// Escaping
// ---------------------------------------------------------------------------

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_attribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Document parse_document() {
    skip_prolog();
    auto root = parse_element();
    skip_misc();
    if (!at_end()) fail("content after document root element");
    return Document(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  bool at_end() const { return pos_ >= input_.size(); }

  char peek() const { return at_end() ? '\0' : input_[pos_]; }

  char peek_at(std::size_t offset) const {
    return pos_ + offset >= input_.size() ? '\0' : input_[pos_ + offset];
  }

  char advance() {
    if (at_end()) fail("unexpected end of input");
    const char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    advance();
  }

  bool consume_if(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (std::size_t i = 0; i < token.size(); ++i) advance();
    return true;
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  void skip_until(std::string_view terminator) {
    while (!at_end()) {
      if (input_.substr(pos_).substr(0, terminator.size()) == terminator) {
        for (std::size_t i = 0; i < terminator.size(); ++i) advance();
        return;
      }
      advance();
    }
    fail("unterminated construct, expected '" + std::string(terminator) + "'");
  }

  /// XML declaration, DOCTYPE, comments and PIs before the root element.
  void skip_prolog() { skip_misc(); }

  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (consume_if("<?")) {
        skip_until("?>");
      } else if (consume_if("<!--")) {
        skip_until("-->");
      } else if (consume_if("<!DOCTYPE")) {
        // Skip to the matching '>' (internal subsets with nested brackets are
        // out of scope for the MOTEUR document formats).
        skip_until(">");
      } else {
        return;
      }
    }
  }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    name += advance();
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  std::string parse_entity() {
    // '&' already consumed.
    std::string entity;
    while (peek() != ';') {
      if (at_end() || entity.size() > 8) fail("malformed entity reference");
      entity += advance();
    }
    advance();  // ';'
    if (entity == "amp") return "&";
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "quot") return "\"";
    if (entity == "apos") return "'";
    if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      try {
        code = entity[1] == 'x' || entity[1] == 'X'
                   ? std::stol(entity.substr(2), nullptr, 16)
                   : std::stol(entity.substr(1), nullptr, 10);
      } catch (const std::exception&) {
        fail("malformed numeric character reference '&" + entity + ";'");
      }
      if (code <= 0 || code > 127) {
        fail("numeric character reference outside ASCII: '&" + entity + ";'");
      }
      return std::string(1, static_cast<char>(code));
    }
    fail("unknown entity '&" + entity + ";'");
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string value;
    while (peek() != quote) {
      if (at_end()) fail("unterminated attribute value");
      if (peek() == '<') fail("'<' inside attribute value");
      if (peek() == '&') {
        advance();
        value += parse_entity();
      } else {
        value += advance();
      }
    }
    advance();  // closing quote
    return value;
  }

  std::unique_ptr<Node> parse_element() {
    expect('<');
    auto node = std::make_unique<Node>(parse_name());
    // Attributes.
    while (true) {
      skip_whitespace();
      if (peek() == '>' || peek() == '/') break;
      const std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      if (node->has_attribute(key)) fail("duplicate attribute '" + key + "'");
      node->set_attribute(key, parse_attribute_value());
    }
    if (consume_if("/>")) return node;
    expect('>');
    parse_content(*node);
    return node;
  }

  void parse_content(Node& node) {
    std::string text;
    while (true) {
      if (at_end()) fail("unterminated element <" + node.name() + ">");
      if (peek() == '<') {
        if (peek_at(1) == '/') {
          advance();  // '<'
          advance();  // '/'
          const std::string closing = parse_name();
          if (closing != node.name()) {
            fail("mismatched closing tag </" + closing + "> for <" + node.name() + ">");
          }
          skip_whitespace();
          expect('>');
          node.append_text(text);
          return;
        }
        if (consume_if("<!--")) {
          skip_until("-->");
          continue;
        }
        if (consume_if("<![CDATA[")) {
          while (!consume_if("]]>")) {
            if (at_end()) fail("unterminated CDATA section");
            text += advance();
          }
          continue;
        }
        if (consume_if("<?")) {
          skip_until("?>");
          continue;
        }
        node.append_text(text);
        text.clear();
        node.adopt(parse_element());
        continue;
      }
      if (peek() == '&') {
        advance();
        text += parse_entity();
      } else {
        text += advance();
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Document parse(std::string_view input) { return Parser(input).parse_document(); }

}  // namespace moteur::xml
