#include "obs/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <queue>
#include <sstream>
#include <unordered_map>

namespace moteur::obs {

namespace {

constexpr double kEps = 1e-9;

const std::string* find_arg(const Span& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

/// Disjoint-interval set with "add and report the newly covered length"
/// semantics — the tool for priority-ordered phase attribution: higher
/// priority phases claim their time first, lower ones only get what is left.
class Coverage {
 public:
  double add(double start, double end) {
    if (end <= start + kEps) return 0.0;
    double added = end - start;
    std::vector<std::pair<double, double>> next;
    next.reserve(covered_.size() + 1);
    for (const auto& [s, e] : covered_) {
      if (e < start - kEps || s > end + kEps) {
        next.emplace_back(s, e);
        continue;
      }
      // Overlap: subtract it from the newly added length, merge the spans.
      added -= std::max(0.0, std::min(e, end) - std::max(s, start));
      start = std::min(start, s);
      end = std::max(end, e);
    }
    next.emplace_back(start, end);
    std::sort(next.begin(), next.end());
    covered_ = std::move(next);
    return std::max(0.0, added);
  }

 private:
  std::vector<std::pair<double, double>> covered_;
};

}  // namespace

CriticalPathReport critical_path(const Tracer& tracer, const std::string& run_id,
                                 double admission_wait) {
  CriticalPathReport report;
  report.run_id = run_id;
  report.admission_wait = std::max(0.0, admission_wait);

  const std::vector<Span>& spans = tracer.spans();
  std::unordered_map<SpanId, const Span*> by_id;
  by_id.reserve(spans.size());
  for (const Span& span : spans) by_id.emplace(span.id, &span);

  // Resolve the run root: "run"-category root whose run_id annotation (or,
  // failing that, name) matches; an empty id selects a sole run root.
  const Span* root = nullptr;
  std::size_t run_roots = 0;
  for (const Span& span : spans) {
    if (span.category != "run" || by_id.count(span.parent) != 0) continue;
    ++run_roots;
    const std::string* id = find_arg(span, "run_id");
    const std::string& key = id ? *id : span.name;
    if (run_id.empty() || key == run_id || span.name == run_id) {
      if (!run_id.empty() || run_roots == 1) root = &span;
    }
  }
  if (root == nullptr || (run_id.empty() && run_roots != 1) || root->open()) {
    return report;  // found = false
  }
  report.found = true;
  report.run = root->name;
  if (const std::string* id = find_arg(*root, "run_id")) report.run_id = *id;
  report.makespan = report.admission_wait + root->duration();

  // Children index + membership: invocation spans descending from this root.
  std::unordered_map<SpanId, std::vector<const Span*>> children;
  for (const Span& span : spans) {
    if (span.parent != 0) children[span.parent].push_back(&span);
  }
  std::unordered_map<SpanId, bool> in_run;
  const std::function<bool(const Span&)> descends = [&](const Span& span) -> bool {
    if (span.id == root->id) return true;
    const auto memo = in_run.find(span.id);
    if (memo != in_run.end()) return memo->second;
    const auto parent = by_id.find(span.parent);
    const bool yes = parent != by_id.end() && descends(*parent->second);
    in_run.emplace(span.id, yes);
    return yes;
  };
  std::vector<const Span*> invocations;
  for (const Span& span : spans) {
    if (span.category == "invocation" && !span.open() && descends(span)) {
      invocations.push_back(&span);
    }
  }
  std::sort(invocations.begin(), invocations.end(),
            [](const Span* a, const Span* b) {
              if (a->start != b->start) return a->start < b->start;
              if (a->end != b->end) return a->end > b->end;
              return a->name < b->name;
            });

  // Greedy chain: from the frontier, always continue with the invocation
  // that reaches furthest; when nothing overlaps the frontier, jump across
  // the gap (the gap itself stays unattributed -> orchestration).
  const auto later_end = [](const Span* a, const Span* b) {
    if (a->end != b->end) return a->end < b->end;  // priority_queue: max end on top
    return a->name > b->name;
  };
  std::priority_queue<const Span*, std::vector<const Span*>, decltype(later_end)> reachable(
      later_end);
  std::size_t next = 0;
  double frontier = root->start;
  const double run_end = root->end;
  while (frontier < run_end - kEps) {
    while (next < invocations.size() && invocations[next]->start <= frontier + kEps) {
      reachable.push(invocations[next++]);
    }
    while (!reachable.empty() && reachable.top()->end <= frontier + kEps) reachable.pop();
    const Span* pick = nullptr;
    if (!reachable.empty()) {
      pick = reachable.top();
      reachable.pop();
    } else if (next < invocations.size()) {
      pick = invocations[next++];  // gap: chain jumps forward
    } else {
      break;  // tail of the run has no invocations -> orchestration
    }
    CriticalPathReport::Step step;
    step.name = pick->name;
    step.start = std::max(frontier, pick->start);
    step.end = std::min(pick->end, run_end);
    if (step.end <= step.start + kEps) {
      frontier = std::max(frontier, step.end);
      continue;
    }

    // Attribute the segment to phases, priority running > stage-in > queued
    // (a straggler's queued phase must not claim time the winning attempt
    // spent executing). Phase spans hang under the invocation's attempts.
    Coverage covered;
    const auto claim = [&](const char* phase) {
      double total = 0.0;
      const auto attempts = children.find(pick->id);
      if (attempts == children.end()) return total;
      for (const Span* attempt : attempts->second) {
        const auto phases = children.find(attempt->id);
        if (phases == children.end()) continue;
        for (const Span* p : phases->second) {
          if (p->category != "phase" || p->name != phase) continue;
          total += covered.add(std::max(p->start, step.start), std::min(p->end, step.end));
        }
      }
      return total;
    };
    step.execution = claim("running");
    step.stage_in = claim("stage-in");
    step.ce_queue = claim("queued");
    report.execution += step.execution;
    report.stage_in += step.stage_in;
    report.ce_queue += step.ce_queue;
    report.steps.push_back(std::move(step));
    frontier = report.steps.back().end;
  }

  // Everything not claimed by a chained phase is orchestration: enactor
  // bookkeeping, inter-invocation gaps, uncovered chain time.
  report.orchestration =
      std::max(0.0, report.makespan - report.admission_wait - report.ce_queue -
                        report.stage_in - report.execution);
  return report;
}

std::string CriticalPathReport::to_json() const {
  std::ostringstream out;
  out << "{\"run_id\":\"" << json_escape(run_id) << "\",\"run\":\"" << json_escape(run)
      << "\",\"found\":" << (found ? "true" : "false")
      << ",\"makespan_seconds\":" << json_number(makespan) << ",\"phases\":{"
      << "\"admission_wait\":" << json_number(admission_wait)
      << ",\"ce_queue\":" << json_number(ce_queue)
      << ",\"stage_in\":" << json_number(stage_in)
      << ",\"execution\":" << json_number(execution)
      << ",\"orchestration\":" << json_number(orchestration) << "}"
      << ",\"attributed_seconds\":" << json_number(attributed()) << ",\"steps\":[";
  bool first = true;
  for (const Step& step : steps) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(step.name)
        << "\",\"start\":" << json_number(step.start)
        << ",\"end\":" << json_number(step.end)
        << ",\"ce_queue\":" << json_number(step.ce_queue)
        << ",\"stage_in\":" << json_number(step.stage_in)
        << ",\"execution\":" << json_number(step.execution) << "}";
  }
  out << "]}";
  return out.str();
}

std::string CriticalPathReport::to_text() const {
  std::ostringstream out;
  if (!found) {
    out << "critical path: run '" << run_id << "' not found in trace\n";
    return out.str();
  }
  out << "== critical path: " << run << " (" << run_id << ") ==\n";
  char line[160];
  std::snprintf(line, sizeof(line), "makespan %.3f s across %zu chained invocation(s)\n",
                makespan, steps.size());
  out << line;
  const auto row = [&](const char* phase, double seconds) {
    const double share = makespan > 0.0 ? seconds / makespan * 100.0 : 0.0;
    std::snprintf(line, sizeof(line), "  %-14s %10.3f s  %5.1f%%\n", phase, seconds, share);
    out << line;
  };
  row("admission", admission_wait);
  row("ce-queue", ce_queue);
  row("stage-in", stage_in);
  row("execution", execution);
  row("orchestration", orchestration);
  return out.str();
}

void record_phases(MetricsRegistry& metrics, const CriticalPathReport& report) {
  if (!report.found) return;
  const auto set = [&](const char* phase, double seconds) {
    metrics
        .gauge("moteur_critical_path_seconds",
               "Makespan attribution of the run's critical path, per phase",
               Labels{{"run", report.run_id}, {"phase", phase}})
        .set(seconds);
  };
  set("admission_wait", report.admission_wait);
  set("ce_queue", report.ce_queue);
  set("stage_in", report.stage_in);
  set("execution", report.execution);
  set("orchestration", report.orchestration);
}

}  // namespace moteur::obs
