#include "obs/recorder.hpp"

#include <algorithm>

namespace moteur::obs {

const char* to_string(RunEvent::Kind kind) {
  switch (kind) {
    case RunEvent::Kind::kRunStarted: return "RunStarted";
    case RunEvent::Kind::kRunFinished: return "RunFinished";
    case RunEvent::Kind::kInvocationStarted: return "InvocationStarted";
    case RunEvent::Kind::kInvocationCompleted: return "InvocationCompleted";
    case RunEvent::Kind::kInvocationFailed: return "InvocationFailed";
    case RunEvent::Kind::kAttemptStarted: return "AttemptStarted";
    case RunEvent::Kind::kAttemptEnded: return "AttemptEnded";
    case RunEvent::Kind::kRetryScheduled: return "RetryScheduled";
    case RunEvent::Kind::kWatchdogFired: return "WatchdogFired";
    case RunEvent::Kind::kProcessorFinished: return "ProcessorFinished";
    case RunEvent::Kind::kInvocationSkipped: return "InvocationSkipped";
    case RunEvent::Kind::kBreakerOpened: return "BreakerOpened";
    case RunEvent::Kind::kBreakerHalfOpen: return "BreakerHalfOpen";
    case RunEvent::Kind::kBreakerClosed: return "BreakerClosed";
    case RunEvent::Kind::kSubmissionRerouted: return "SubmissionRerouted";
    case RunEvent::Kind::kCacheHit: return "CacheHit";
  }
  return "?";
}

RunRecorder::RunRecorder() {
  submissions_ = &metrics_.counter("moteur_submissions_total",
                                   "Backend executions, attempts included");
  invocations_ =
      &metrics_.counter("moteur_invocations_total", "Logical service invocations completed");
  retries_ = &metrics_.counter("moteur_retries_total", "Resubmissions after transient failures");
  timeouts_ = &metrics_.counter("moteur_timeouts_total", "Watchdog-triggered clone submissions");
  tuples_lost_ =
      &metrics_.counter("moteur_tuples_lost_total", "Data tuples lost to definitive failures");
  skipped_ = &metrics_.counter("moteur_invocations_skipped_total",
                               "Invocations skipped after consuming a poisoned token");
  rerouted_ = &metrics_.counter("moteur_submissions_rerouted_total",
                                "Submissions whose matchmaking excluded an open breaker");
  cache_hits_ = &metrics_.counter("moteur_cache_hits_total",
                                  "Invocations served from the memoization cache");
  tuples_in_flight_ = &metrics_.gauge("moteur_tuples_in_flight",
                                      "Data tuples currently handed to the backend");
  makespan_ =
      &metrics_.gauge("moteur_makespan_seconds", "Total execution time Sigma of the run");
}

const std::string& RunRecorder::ce_label(const RunEvent& event) {
  static const std::string kLocal = "local";
  return event.computing_element.empty() ? kLocal : event.computing_element;
}

RunRecorder::CeSeries& RunRecorder::ce_series(const std::string& ce) {
  const auto [it, inserted] = ce_series_.try_emplace(ce);
  if (inserted) {
    const Labels by_ce{{"ce", ce}};
    it->second.latency = &metrics_.histogram(
        "moteur_ce_latency_seconds",
        "Submission-to-completion latency of successful attempts, per CE",
        Histogram::latency_bounds(), by_ce);
    it->second.queue_wait = &metrics_.histogram(
        "moteur_ce_queue_wait_seconds",
        "Submission-to-payload-start wait of successful attempts, per CE",
        Histogram::latency_bounds(), by_ce);
  }
  return it->second;
}

Counter& RunRecorder::failure_counter(const std::string& status) {
  const auto [it, inserted] = failure_counters_.try_emplace(status, nullptr);
  if (inserted) {
    it->second = &metrics_.counter("moteur_attempt_failures_total",
                                   "Failed backend executions by status",
                                   Labels{{"status", status}});
  }
  return *it->second;
}

Gauge& RunRecorder::breaker_gauge(const std::string& ce) {
  const auto [it, inserted] = breaker_gauges_.try_emplace(ce, nullptr);
  if (inserted) {
    it->second = &metrics_.gauge("moteur_breaker_open",
                                 "Circuit-breaker state per CE (0 closed, 0.5 half-open, 1 open)",
                                 Labels{{"ce", ce}});
  }
  return *it->second;
}

Counter& RunRecorder::breaker_transitions(const std::string& ce, const char* to) {
  const auto [it, inserted] = breaker_transitions_.try_emplace({ce, to}, nullptr);
  if (inserted) {
    it->second = &metrics_.counter("moteur_breaker_transitions_total",
                                   "Circuit-breaker transitions by CE and target state",
                                   Labels{{"ce", ce}, {"to", to}});
  }
  return *it->second;
}

Counter& RunRecorder::processor_tuples(const std::string& processor) {
  // One-entry memo: invocation completions arrive in per-processor bursts,
  // so the map lookup is skipped on the hot path (counters are never erased,
  // the cached pointer stays valid for the registry's lifetime).
  if (last_processor_tuples_ != nullptr && processor == last_processor_) {
    return *last_processor_tuples_;
  }
  const auto [it, inserted] = processor_tuples_.try_emplace(processor, nullptr);
  if (inserted) {
    it->second = &metrics_.counter("moteur_processor_tuples_total",
                                   "Data tuples completed per processor",
                                   Labels{{"processor", processor}});
  }
  last_processor_ = processor;
  last_processor_tuples_ = it->second;
  return *it->second;
}

void RunRecorder::on_event(const RunEvent& event) {
  switch (event.kind) {
    case RunEvent::Kind::kRunStarted: {
      // A fresh context per run id; a re-used id (sequential runs through one
      // Enactor) starts over, its per-run counters accumulating.
      RunCtx& c = ctx(event.run_id);
      c = RunCtx{};
      c.last_total_invocations = event.total_invocations;
      c.run_span = tracer_.begin(event.run, "run", event.time);
      tracer_.annotate(c.run_span, "run_id", event.run_id);
      const Labels by_run{{"run", event.run_id}};
      c.invocations = &metrics_.counter("moteur_run_invocations_total",
                                        "Logical invocations completed, per run", by_run);
      c.submissions = &metrics_.counter("moteur_run_submissions_total",
                                        "Backend executions launched, per run", by_run);
      c.makespan = &metrics_.gauge("moteur_run_makespan_seconds",
                                   "Total execution time Sigma, per run", by_run);
      c.cache_hits = &metrics_.counter("moteur_run_cache_hits_total",
                                       "Invocations served from the cache, per run", by_run);
      break;
    }

    case RunEvent::Kind::kRunFinished: {
      RunCtx& c = ctx(event.run_id);
      const Span* run = tracer_.find(c.run_span);
      if (run != nullptr) {
        makespan_->set(event.time - run->start);
        if (c.makespan != nullptr) c.makespan->set(event.time - run->start);
      }
      tracer_.end(c.run_span, event.time);
      // Stragglers whose completions were never dispatched stay open; close
      // THIS run's leftovers so exports always hold a consistent tree — other
      // runs still in flight keep their open spans untouched.
      const auto close_leftover = [&](SpanId id) {
        const Span* span = tracer_.find(id);
        if (span == nullptr || !span->open()) return;
        tracer_.annotate(id, "unfinished", "true");
        tracer_.end(id, event.time);
      };
      for (const auto& [key, id] : c.attempt_spans) close_leftover(id);
      for (const auto& [key, id] : c.invocation_spans) close_leftover(id);
      for (const auto& [key, id] : c.processor_spans) close_leftover(id);
      tuples_in_flight_->set(static_cast<double>(event.tuples_in_flight));
      if (last_ctx_ == &c) last_ctx_ = nullptr;  // node dies with the erase
      runs_.erase(event.run_id);
      break;
    }

    case RunEvent::Kind::kInvocationStarted: {
      RunCtx& c = ctx(event.run_id);
      auto [it, inserted] = c.processor_spans.try_emplace(event.processor, 0);
      if (inserted) {
        it->second = tracer_.begin(event.processor, "processor", event.time, c.run_span);
      }
      const SpanId span = tracer_.begin(
          event.processor + " #" + std::to_string(event.invocation), "invocation",
          event.time, it->second);
      tracer_.annotate(span, "tuples", std::to_string(event.tuples));
      c.invocation_spans[event.invocation] = span;
      tuples_in_flight_->set(static_cast<double>(event.tuples_in_flight));
      break;
    }

    case RunEvent::Kind::kAttemptStarted: {
      RunCtx& c = ctx(event.run_id);
      const auto it = c.invocation_spans.find(event.invocation);
      const SpanId parent = it == c.invocation_spans.end() ? c.run_span : it->second;
      const SpanId span = tracer_.begin("attempt " + std::to_string(event.attempt),
                                        "attempt", event.time, parent);
      c.attempt_spans[{event.invocation, event.attempt}] = span;
      submissions_->inc();
      if (c.submissions != nullptr) c.submissions->inc();
      break;
    }

    case RunEvent::Kind::kAttemptEnded: {
      RunCtx& c = ctx(event.run_id);
      const auto key = std::make_pair(event.invocation, event.attempt);
      const auto it = c.attempt_spans.find(key);
      if (it != c.attempt_spans.end()) {
        const SpanId span = it->second;
        tracer_.end(span, event.time);
        tracer_.annotate(span, "status", event.status);
        if (!event.computing_element.empty()) {
          tracer_.annotate(span, "ce", event.computing_element);
        }
        if (event.superseded) tracer_.annotate(span, "superseded", "true");
        if (!event.error.empty()) tracer_.annotate(span, "error", event.error);
        // Queue-wait, stage-in, and running phases from the backend's attempt
        // timings. Payload start follows input staging, so the staging time
        // (when the backend reports one) is carved off the tail of the
        // submit->start window: queued | stage-in | running.
        if (event.start_time >= event.submit_time && event.submit_time >= 0.0) {
          const double stage =
              std::clamp(event.stage_in_seconds, 0.0, event.start_time - event.submit_time);
          const double stage_begin = event.start_time - stage;
          if (stage_begin > event.submit_time || stage == 0.0) {
            tracer_.record("queued", "phase", event.submit_time, stage_begin, span);
          }
          if (stage > 0.0) {
            tracer_.record("stage-in", "phase", stage_begin, event.start_time, span);
          }
          if (event.end_time >= event.start_time) {
            tracer_.record("running", "phase", event.start_time, event.end_time, span);
          }
        }
        c.attempt_spans.erase(it);
      }
      if (event.ok) {
        CeSeries& series = ce_series(ce_label(event));
        series.latency->observe(event.end_time - event.submit_time);
        if (event.start_time >= event.submit_time) {
          series.queue_wait->observe(event.start_time - event.submit_time);
        }
      } else {
        failure_counter(event.status).inc();
      }
      break;
    }

    case RunEvent::Kind::kInvocationCompleted: {
      RunCtx& c = ctx(event.run_id);
      const auto it = c.invocation_spans.find(event.invocation);
      if (it != c.invocation_spans.end()) {
        tracer_.end(it->second, event.time);
        c.invocation_spans.erase(it);
      }
      const auto delta =
          static_cast<double>(event.total_invocations - c.last_total_invocations);
      invocations_->inc(delta);
      if (c.invocations != nullptr) c.invocations->inc(delta);
      c.last_total_invocations = event.total_invocations;
      processor_tuples(event.processor).inc(static_cast<double>(event.tuples));
      tuples_in_flight_->set(static_cast<double>(event.tuples_in_flight));
      break;
    }

    case RunEvent::Kind::kInvocationFailed: {
      RunCtx& c = ctx(event.run_id);
      const auto it = c.invocation_spans.find(event.invocation);
      if (it != c.invocation_spans.end()) {
        tracer_.annotate(it->second, "failed", "true");
        tracer_.end(it->second, event.time);
        c.invocation_spans.erase(it);
      }
      tuples_lost_->inc(static_cast<double>(event.tuples));
      tuples_in_flight_->set(static_cast<double>(event.tuples_in_flight));
      break;
    }

    case RunEvent::Kind::kRetryScheduled: {
      retries_->inc();
      break;
    }

    case RunEvent::Kind::kWatchdogFired: {
      timeouts_->inc();
      break;
    }

    case RunEvent::Kind::kProcessorFinished: {
      RunCtx& c = ctx(event.run_id);
      const auto it = c.processor_spans.find(event.processor);
      if (it != c.processor_spans.end()) tracer_.end(it->second, event.time);
      break;
    }

    case RunEvent::Kind::kInvocationSkipped: {
      RunCtx& c = ctx(event.run_id);
      // Zero-length span under the processor, so skips show up in the tree.
      auto [it, inserted] = c.processor_spans.try_emplace(event.processor, 0);
      if (inserted) {
        it->second = tracer_.begin(event.processor, "processor", event.time, c.run_span);
      }
      const SpanId span = tracer_.record(
          event.processor + " #" + std::to_string(event.invocation) + " (skipped)",
          "invocation", event.time, event.time, it->second);
      if (!event.error.empty()) tracer_.annotate(span, "cause", event.error);
      tracer_.annotate(span, "skipped", "true");
      skipped_->inc(static_cast<double>(event.tuples));
      break;
    }

    case RunEvent::Kind::kBreakerOpened: {
      breaker_gauge(event.computing_element).set(1.0);
      breaker_transitions(event.computing_element, "open").inc();
      break;
    }

    case RunEvent::Kind::kBreakerHalfOpen: {
      breaker_gauge(event.computing_element).set(0.5);
      breaker_transitions(event.computing_element, "half-open").inc();
      break;
    }

    case RunEvent::Kind::kBreakerClosed: {
      breaker_gauge(event.computing_element).set(0.0);
      breaker_transitions(event.computing_element, "closed").inc();
      break;
    }

    case RunEvent::Kind::kSubmissionRerouted: {
      rerouted_->inc();
      break;
    }

    case RunEvent::Kind::kCacheHit: {
      RunCtx& c = ctx(event.run_id);
      // Zero-length span under the processor, so hits show up in the tree
      // without a backend attempt beneath them.
      auto [it, inserted] = c.processor_spans.try_emplace(event.processor, 0);
      if (inserted) {
        it->second = tracer_.begin(event.processor, "processor", event.time, c.run_span);
      }
      const SpanId span = tracer_.record(
          event.processor + " #" + std::to_string(event.invocation) + " (cached)",
          "invocation", event.time, event.time, it->second);
      tracer_.annotate(span, "cached", "true");
      // A hit completes logical invocations without a kInvocationCompleted:
      // fold the delta into the invocation counters here.
      const auto delta =
          static_cast<double>(event.total_invocations - c.last_total_invocations);
      invocations_->inc(delta);
      if (c.invocations != nullptr) c.invocations->inc(delta);
      c.last_total_invocations = event.total_invocations;
      processor_tuples(event.processor).inc(static_cast<double>(event.tuples));
      cache_hits_->inc();
      if (c.cache_hits != nullptr) c.cache_hits->inc();
      break;
    }
  }
}

}  // namespace moteur::obs
