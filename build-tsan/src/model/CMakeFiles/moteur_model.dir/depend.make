# Empty dependencies file for moteur_model.
# This may be replaced when dependencies are built.
