file(REMOVE_RECURSE
  "CMakeFiles/test_grid_records.dir/test_grid_records.cpp.o"
  "CMakeFiles/test_grid_records.dir/test_grid_records.cpp.o.d"
  "test_grid_records"
  "test_grid_records.pdb"
  "test_grid_records[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
