file(REMOVE_RECURSE
  "CMakeFiles/wrapper_service.dir/wrapper_service.cpp.o"
  "CMakeFiles/wrapper_service.dir/wrapper_service.cpp.o.d"
  "wrapper_service"
  "wrapper_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
