// Data plane: content digests, the replica catalog, the invocation
// memoization cache (alone and composed with fault containment through the
// engine and the RunService), and data-aware broker matchmaking.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "data/dataref.hpp"
#include "data/dataset.hpp"
#include "data/invocation_cache.hpp"
#include "data/replica_catalog.hpp"
#include "enactor/enactor.hpp"
#include "enactor/run_request.hpp"
#include "enactor/sim_backend.hpp"
#include "enactor/threaded_backend.hpp"
#include "grid/grid.hpp"
#include "service/run_service.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "workflow/patterns.hpp"

namespace moteur {
namespace {

using services::FunctionalService;
using services::Inputs;
using services::JobProfile;
using services::Result;

// ---------------------------------------------------------------------------
// Content digests
// ---------------------------------------------------------------------------

TEST(Digest, Fnv1aIsDeterministicAndContentSensitive) {
  EXPECT_EQ(data::fnv1a(""), data::kFnvOffset);
  EXPECT_EQ(data::fnv1a("image7.png"), data::fnv1a("image7.png"));
  EXPECT_NE(data::fnv1a("image7.png"), data::fnv1a("image8.png"));
  // Chaining through `seed` differs from concatenation-free restarts.
  EXPECT_NE(data::fnv1a("b", data::fnv1a("a")), data::fnv1a("b"));
}

TEST(Digest, DerivedDigestIsOrderIndependentButPortSensitive) {
  // The cache-key property: equal bindings through the same service and
  // port collide regardless of iteration order, but swapping which port
  // carries which value must not (non-commutative services).
  EXPECT_EQ(data::derived_digest(7, "out", {{"a", 1}, {"b", 2}, {"c", 3}}),
            data::derived_digest(7, "out", {{"c", 3}, {"a", 1}, {"b", 2}}));
  EXPECT_NE(data::derived_digest(7, "out", {{"a", 1}, {"b", 2}}),
            data::derived_digest(7, "out", {{"a", 2}, {"b", 1}}));  // swapped ports
  EXPECT_NE(data::derived_digest(7, "out", {{"a", 1}, {"b", 2}, {"c", 3}}),
            data::derived_digest(7, "out", {{"a", 1}, {"b", 2}, {"c", 4}}));
  EXPECT_NE(data::derived_digest(7, "out", {{"a", 1}, {"b", 2}}),
            data::derived_digest(8, "out", {{"a", 1}, {"b", 2}}));
  EXPECT_NE(data::derived_digest(7, "c1", {{"a", 1}, {"b", 2}}),
            data::derived_digest(7, "c2", {{"a", 1}, {"b", 2}}));
}

TEST(Digest, HexSpellingIsFixedWidth) {
  EXPECT_EQ(data::digest_hex(0x1), "0000000000000001");
  EXPECT_EQ(data::digest_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(data::digest_hex(~0ull), "ffffffffffffffff");
}

TEST(Digest, SourceTokensWithEqualValuesShareADigest) {
  const auto a = data::Token::from_source("src", 0, std::string("x"), "x");
  const auto b = data::Token::from_source("other", 5, std::string("x"), "x");
  const auto c = data::Token::from_source("src", 1, std::string("y"), "y");
  EXPECT_NE(a.digest(), 0u);
  EXPECT_EQ(a.digest(), b.digest());  // content, not provenance
  EXPECT_NE(a.digest(), c.digest());
}

// ---------------------------------------------------------------------------
// Replica catalog
// ---------------------------------------------------------------------------

TEST(ReplicaCatalog, RegisterLocateAndSize) {
  data::ReplicaCatalog catalog;
  EXPECT_TRUE(catalog.locate("lfn://x").empty());
  catalog.register_replica("lfn://x", "se-a", 7.8);
  catalog.register_replica("lfn://x", "se-b", 7.8);
  catalog.register_replica("lfn://y", "se-a", 1.0);
  EXPECT_EQ(catalog.locate("lfn://x"), (std::vector<std::string>{"se-a", "se-b"}));
  EXPECT_TRUE(catalog.has("lfn://x", "se-b"));
  EXPECT_FALSE(catalog.has("lfn://y", "se-b"));
  EXPECT_DOUBLE_EQ(catalog.size_mb("lfn://x"), 7.8);
  EXPECT_DOUBLE_EQ(catalog.size_mb("lfn://unknown"), 0.0);
  EXPECT_EQ(catalog.file_count(), 2u);
  EXPECT_EQ(catalog.replica_count(), 3u);
}

TEST(ReplicaCatalog, RegistrationIsIdempotentPerStorageElement) {
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://x", "se-a", 2.0);
  catalog.register_replica("lfn://x", "se-a", 2.0);
  EXPECT_EQ(catalog.locate("lfn://x").size(), 1u);
  EXPECT_EQ(catalog.replica_count(), 1u);
}

// ---------------------------------------------------------------------------
// Invocation cache
// ---------------------------------------------------------------------------

TEST(InvocationCache, KeyIsOrderIndependentButPortSensitive) {
  EXPECT_EQ(data::InvocationCache::cache_key(9, {{"a", 1}, {"b", 2}, {"c", 3}}),
            data::InvocationCache::cache_key(9, {{"c", 3}, {"b", 2}, {"a", 1}}));
  // Swapping which port carries which value is a different invocation: the
  // cache must never serve a=X,b=Y's result to a=Y,b=X.
  EXPECT_NE(data::InvocationCache::cache_key(9, {{"a", 1}, {"b", 2}}),
            data::InvocationCache::cache_key(9, {{"a", 2}, {"b", 1}}));
  EXPECT_NE(data::InvocationCache::cache_key(9, {{"a", 1}, {"b", 2}, {"c", 3}}),
            data::InvocationCache::cache_key(9, {{"a", 1}, {"b", 2}}));
  EXPECT_NE(data::InvocationCache::cache_key(9, {{"a", 1}}),
            data::InvocationCache::cache_key(10, {{"a", 1}}));
}

TEST(InvocationCache, CountsHitsAndMissesPerRun) {
  data::InvocationCache cache;
  const std::string key = data::InvocationCache::cache_key(1, {{"in", 2}});
  EXPECT_FALSE(cache.lookup(key, "run-a").has_value());  // probes count nothing
  cache.note_miss("run-a");  // the caller reports the miss when it executes
  data::CachedInvocation memo;
  memo.outputs.push_back(data::CachedOutput{"out", 42, "42", 5, nullptr});
  cache.insert(key, std::move(memo), "run-a");
  ASSERT_TRUE(cache.lookup(key, "run-b").has_value());
  EXPECT_EQ(cache.lookup(key, "run-b")->outputs.at(0).repr, "42");

  EXPECT_EQ(cache.stats("run-a").misses, 1u);
  EXPECT_EQ(cache.stats("run-a").insertions, 1u);
  EXPECT_EQ(cache.stats("run-b").hits, 2u);
  EXPECT_EQ(cache.totals().hits, 2u);
  EXPECT_EQ(cache.totals().misses, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
  const auto runs = cache.run_ids();
  EXPECT_EQ(runs.size(), 2u);
}

TEST(InvocationCache, FirstWriterWins) {
  data::InvocationCache cache;
  const std::string key = data::InvocationCache::cache_key(1, {{"in", 2}});
  data::CachedInvocation first;
  first.outputs.push_back(data::CachedOutput{"out", 1, "first", 0, nullptr});
  data::CachedInvocation second;
  second.outputs.push_back(data::CachedOutput{"out", 2, "second", 0, nullptr});
  cache.insert(key, std::move(first), "r");
  cache.insert(key, std::move(second), "r");
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats("r").insertions, 1u);  // the duplicate is not counted
  EXPECT_EQ(cache.lookup(key, "r")->outputs.at(0).repr, "first");
}

// ---------------------------------------------------------------------------
// Engine memoization (simulated backend)
// ---------------------------------------------------------------------------

data::InputDataSet items(const std::string& source, std::size_t count) {
  data::InputDataSet ds;
  ds.declare_input(source);
  for (std::size_t j = 0; j < count; ++j) {
    ds.add_item(source, "item" + std::to_string(j));
  }
  return ds;
}

struct SimRig {
  sim::Simulator simulator;
  grid::Grid grid;
  enactor::SimGridBackend backend;
  services::ServiceRegistry registry;

  SimRig() : grid(simulator, grid::GridConfig::constant(10.0)), backend(grid) {}

  void add_chain_services(std::size_t n, double compute) {
    for (std::size_t i = 0; i < n; ++i) {
      registry.add(services::make_simulated_service("P" + std::to_string(i), {"in"},
                                                    {"out"},
                                                    JobProfile{compute, 1.0, 1.0}));
    }
  }
};

TEST(EngineCache, SecondRunThroughOneEnactorIsAllHits) {
  SimRig rig;
  rig.add_chain_services(2, 30.0);
  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.cache = true;
  enactor::Enactor moteur(rig.backend, rig.registry, policy);

  const auto wf = workflow::make_chain(2);
  const auto first = moteur.run({.workflow = wf, .inputs = items("src", 4)});
  EXPECT_EQ(first.cache_hits(), 0u);
  EXPECT_EQ(first.invocations(), 8u);
  EXPECT_EQ(first.submissions(), 8u);
  const std::size_t jobs_after_first = rig.backend.jobs_submitted();

  const auto second = moteur.run({.workflow = wf, .inputs = items("src", 4)});
  EXPECT_EQ(second.cache_hits(), 8u);
  EXPECT_EQ(second.invocations(), 8u);
  EXPECT_EQ(second.submissions(), 0u);  // no grid job at all
  EXPECT_EQ(rig.backend.jobs_submitted(), jobs_after_first);
  EXPECT_DOUBLE_EQ(second.makespan(), 0.0);  // served at t=0, no grid latency

  // The replayed outputs are indistinguishable from the computed ones.
  const auto& a = first.sink_outputs.at("sink");
  const auto& b = second.sink_outputs.at("sink");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].id(), b[j].id());
    EXPECT_EQ(a[j].repr(), b[j].repr());
    EXPECT_EQ(a[j].digest(), b[j].digest());
    EXPECT_NE(b[j].digest(), 0u);
  }

  const auto* cache = moteur.invocation_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->entry_count(), 8u);
  EXPECT_EQ(cache->totals().hits, 8u);
}

TEST(EngineCache, RepeatedValuesWithinOneRunHit) {
  // Three items carry the same value: under sequential enactment the first
  // invocation computes, the other two are served from the cache mid-run.
  SimRig rig;
  rig.add_chain_services(1, 30.0);
  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::nop();
  policy.cache = true;
  enactor::Enactor moteur(rig.backend, rig.registry, policy);

  data::InputDataSet ds;
  ds.declare_input("src");
  ds.add_item("src", "same");
  ds.add_item("src", "same");
  ds.add_item("src", "same");
  ds.add_item("src", "unique");

  const auto result = moteur.run({.workflow = workflow::make_chain(1), .inputs = ds});
  EXPECT_EQ(result.invocations(), 4u);
  EXPECT_EQ(result.cache_hits(), 2u);
  EXPECT_EQ(result.submissions(), 2u);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), 4u);
}

TEST(EngineCache, SwappedPortBindingsAreDistinctInvocations) {
  // The memoization key is port-sensitive: invoking concat with a="x",b="y"
  // and then a="y",b="x" are different invocations — the second must not be
  // served the first's memoized result (concat is not commutative).
  services::ServiceRegistry registry;
  registry.add(std::make_shared<FunctionalService>(
      "concat", std::vector<std::string>{"a", "b"}, std::vector<std::string>{"out"},
      [](const Inputs& in) {
        const std::string v =
            in.at("a").as<std::string>() + in.at("b").as<std::string>();
        Result r;
        r.outputs["out"] = services::OutputValue{v, v};
        return r;
      }));

  enactor::ThreadedBackend backend(2);
  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.cache = true;
  enactor::Enactor moteur(backend, registry, policy);

  workflow::Workflow wf("swap");
  wf.add_source("A");
  wf.add_source("B");
  wf.add_processor("concat", {"a", "b"}, {"out"});
  wf.add_sink("sink");
  wf.link("A", "out", "concat", "a");
  wf.link("B", "out", "concat", "b");
  wf.link("concat", "out", "sink", "in");

  data::InputDataSet first;
  first.add_item("A", std::string("x"));
  first.add_item("B", std::string("y"));
  const auto r1 = moteur.run({.workflow = wf, .inputs = first});
  ASSERT_EQ(r1.sink_outputs.at("sink").size(), 1u);
  EXPECT_EQ(r1.sink_outputs.at("sink")[0].as<std::string>(), "xy");

  data::InputDataSet second;
  second.add_item("A", std::string("y"));
  second.add_item("B", std::string("x"));
  const auto r2 = moteur.run({.workflow = wf, .inputs = second});
  EXPECT_EQ(r2.cache_hits(), 0u);  // same value multiset, different binding
  ASSERT_EQ(r2.sink_outputs.at("sink").size(), 1u);
  EXPECT_EQ(r2.sink_outputs.at("sink")[0].as<std::string>(), "yx");

  // And the distinct bindings coexist in the cache as distinct entries.
  EXPECT_EQ(moteur.invocation_cache()->entry_count(), 2u);
}

TEST(EngineCache, NonDeterministicServiceIsNeverMemoized) {
  SimRig rig;
  auto service = services::make_simulated_service("P0", {"in"}, {"out"},
                                                  JobProfile{30.0, 0.0, 0.0});
  service->set_deterministic(false);
  rig.registry.add(service);

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.cache = true;
  enactor::Enactor moteur(rig.backend, rig.registry, policy);
  const auto wf = workflow::make_chain(1);
  moteur.run({.workflow = wf, .inputs = items("src", 3)});
  const auto second = moteur.run({.workflow = wf, .inputs = items("src", 3)});
  EXPECT_EQ(second.cache_hits(), 0u);
  EXPECT_EQ(second.submissions(), 3u);
  EXPECT_EQ(moteur.invocation_cache()->entry_count(), 0u);
}

TEST(EngineCache, PolicyOffMeansNoCacheAtAll) {
  SimRig rig;
  rig.add_chain_services(1, 30.0);
  enactor::Enactor moteur(rig.backend, rig.registry, enactor::EnactmentPolicy::sp_dp());
  const auto wf = workflow::make_chain(1);
  moteur.run({.workflow = wf, .inputs = items("src", 3)});
  const auto second = moteur.run({.workflow = wf, .inputs = items("src", 3)});
  EXPECT_EQ(second.cache_hits(), 0u);
  EXPECT_EQ(second.submissions(), 3u);
  EXPECT_EQ(moteur.invocation_cache(), nullptr);
}

// ---------------------------------------------------------------------------
// Cache x fault containment
// ---------------------------------------------------------------------------

std::shared_ptr<FunctionalService> increment_service(const std::string& name) {
  return std::make_shared<FunctionalService>(
      name, std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs& in) {
        const int v = std::stoi(in.at("in").as<std::string>());
        Result r;
        r.outputs["out"] = services::OutputValue{v + 1, std::to_string(v + 1)};
        return r;
      });
}

TEST(CacheFaults, PoisonedResultsAreNeverCached) {
  // Every attempt on the only host fails: under kContinue the run drains
  // with poisoned sinks, and not a single entry may reach the cache — a
  // poisoned token has no content to memoize.
  services::ServiceRegistry registry;
  registry.add(increment_service("P0"));
  registry.add(increment_service("P1"));
  data::InputDataSet ds;
  for (int j = 0; j < 10; ++j) ds.add_item("src", std::to_string(j));

  enactor::ThreadedBackend backend(4);
  backend.configure_hosts({"h0"}, /*seed=*/3);
  backend.set_host_failure_probability("h0", 1.0);

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.retry = enactor::RetryPolicy::resubmit(2);
  policy.failure_policy = enactor::FailurePolicy::kContinue;
  policy.cache = true;

  enactor::Enactor moteur(backend, registry, policy);
  const auto result = moteur.run({.workflow = workflow::make_chain(2), .inputs = ds});

  EXPECT_EQ(result.failures(), 10u);
  EXPECT_EQ(result.cache_hits(), 0u);
  const auto* cache = moteur.invocation_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->entry_count(), 0u);
  EXPECT_EQ(cache->totals().insertions, 0u);
  EXPECT_EQ(cache->totals().hits, 0u);
}

TEST(CacheFaults, BreakerReroutedSuccessIsCachedAndReplayed) {
  // Host h0 fails every attempt and trips its breaker; every invocation
  // eventually succeeds on h1. Those rerouted successes are ordinary
  // complete results: a second pass must be served entirely from the cache.
  services::ServiceRegistry registry;
  registry.add(increment_service("P0"));
  data::InputDataSet ds;
  constexpr int kItems = 20;
  for (int j = 0; j < kItems; ++j) ds.add_item("src", std::to_string(j));

  enactor::ThreadedBackend backend(4);
  backend.configure_hosts({"h0", "h1"}, /*seed=*/7);
  backend.set_host_failure_probability("h0", 1.0);

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.retry = enactor::RetryPolicy::resubmit(8);
  policy.failure_policy = enactor::FailurePolicy::kContinue;
  policy.breaker.enabled = true;
  policy.breaker.window = 4;
  policy.breaker.threshold = 2;
  policy.breaker.cooldown_seconds = 1e9;
  policy.cache = true;

  enactor::Enactor moteur(backend, registry, policy);
  const auto wf = workflow::make_chain(1);
  const auto first = moteur.run({.workflow = wf, .inputs = ds});
  EXPECT_EQ(first.failures(), 0u);
  EXPECT_EQ(first.sink_outputs.at("sink").size(), static_cast<std::size_t>(kItems));

  const auto second = moteur.run({.workflow = wf, .inputs = ds});
  EXPECT_EQ(second.cache_hits(), static_cast<std::size_t>(kItems));
  EXPECT_EQ(second.submissions(), 0u);
  const auto& tokens = second.sink_outputs.at("sink");
  ASSERT_EQ(tokens.size(), static_cast<std::size_t>(kItems));
  for (int j = 0; j < kItems; ++j) {
    EXPECT_EQ(tokens[static_cast<std::size_t>(j)].as<int>(), j + 1);
  }
}

TEST(CacheFaults, CancelledRunLeavesNoHalfWrittenEntries) {
  // A run cancelled mid-flight inserts exactly its completed invocations and
  // nothing else; replaying the same inputs hits precisely those entries and
  // computes the rest, converging on one entry per item.
  services::ServiceRegistry registry;
  registry.add(std::make_shared<FunctionalService>(
      "P0", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs& in) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        const std::string v = in.at("in").as<std::string>() + "*";
        Result r;
        r.outputs["out"] = services::OutputValue{v, v};
        return r;
      }));

  enactor::ThreadedBackend backend(2);
  service::RunServiceConfig config;
  config.admission.max_active = 1;
  config.admission.max_inflight = 2;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  config.defaults.policy.cache = true;
  service::RunService runs(backend, registry, config);

  constexpr std::size_t kItems = 40;
  enactor::RunRequest victim;
  victim.name = "victim";
  victim.workflow = workflow::make_chain(1);
  victim.inputs = items("src", kItems);
  auto handle = runs.submit(std::move(victim));
  while (handle.poll() == service::RunState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  handle.cancel();
  handle.wait();
  runs.wait_idle();

  auto* cache = runs.invocation_cache();
  ASSERT_NE(cache, nullptr);
  const std::size_t completed = cache->stats("victim").insertions;
  EXPECT_EQ(cache->entry_count(), completed);  // no partial entries
  EXPECT_LE(completed, kItems);

  enactor::RunRequest replay;
  replay.name = "replay";
  replay.workflow = workflow::make_chain(1);
  replay.inputs = items("src", kItems);
  auto again = runs.submit(std::move(replay));
  EXPECT_EQ(again.wait(), service::RunState::kFinished);
  runs.wait_idle();

  EXPECT_EQ(again.result().failures(), 0u);
  EXPECT_EQ(again.result().sink_outputs.at("sink").size(), kItems);
  EXPECT_EQ(cache->stats("replay").hits, completed);
  EXPECT_EQ(cache->entry_count(), kItems);
}

// ---------------------------------------------------------------------------
// Data-aware matchmaking
// ---------------------------------------------------------------------------

grid::GridConfig two_site_grid() {
  grid::GridConfig config;
  grid::ComputingElementConfig ce_a;
  ce_a.name = "ce-a";
  ce_a.worker_slots = 4;
  ce_a.close_storage_element = "se-a";
  grid::ComputingElementConfig ce_b = ce_a;
  ce_b.name = "ce-b";
  ce_b.close_storage_element = "se-b";
  config.computing_elements = {ce_a, ce_b};
  grid::StorageElementConfig se_a;
  se_a.name = "se-a";
  se_a.transfer_bandwidth_mb_per_s = 1.0;  // staging visibly costs time
  grid::StorageElementConfig se_b = se_a;
  se_b.name = "se-b";
  config.storage_elements = {se_a, se_b};
  config.remote_transfer_penalty = 3.0;
  return config;
}

TEST(DataAwareGrid, RoutesJobNextToItsReplica) {
  auto config = two_site_grid();
  config.data_aware_matchmaking = true;
  sim::Simulator sim;
  grid::Grid grid(sim, config);
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://big", "se-b", 100.0);
  grid.set_catalog(&catalog);

  grid::JobRequest request;
  request.name = "j";
  request.compute_seconds = 10.0;
  request.input_megabytes = 100.0;
  request.input_refs.push_back(grid::DataStageRef{"lfn://big", 100.0});

  // Pricing: local replica at se-b = 100 MB, remote through se-a = 300 MB.
  EXPECT_GT(grid.stage_in_estimate_seconds(request, "ce-a"),
            grid.stage_in_estimate_seconds(request, "ce-b"));

  grid::JobRecord record;
  grid.submit(request, [&](const grid::JobRecord& r) { record = r; });
  sim.run();
  EXPECT_EQ(record.state, grid::JobState::kDone);
  EXPECT_EQ(record.computing_element, "ce-b");
  EXPECT_EQ(record.staging_element, "se-b");
  EXPECT_DOUBLE_EQ(record.staged_in_megabytes, 100.0);
  EXPECT_DOUBLE_EQ(record.remote_input_megabytes, 0.0);
}

TEST(DataAwareGrid, SuccessfulStageInRegistersAReplicaAtTheCloseSe) {
  auto config = two_site_grid();
  config.data_aware_matchmaking = true;
  sim::Simulator sim;
  grid::Grid grid(sim, config);
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://big", "se-b", 100.0);
  grid.set_catalog(&catalog);

  grid::JobRequest request;
  request.name = "j";
  request.compute_seconds = 10.0;
  request.input_megabytes = 100.0;
  request.input_refs.push_back(grid::DataStageRef{"lfn://big", 100.0});
  grid.submit(request, [](const grid::JobRecord&) {});
  sim.run();

  // The close SE of the executing CE now holds a copy too, so a later blind
  // placement on ce-b is equally cheap.
  EXPECT_TRUE(catalog.has("lfn://big", "se-b"));
  EXPECT_EQ(catalog.replica_count(), 1u);  // already local: nothing new
}

TEST(DataAwareGrid, RemoteStagingPaysThePenalty) {
  // With no data-aware ranking the broker may land on the replica-less site;
  // force it by making only ce-a admissible and check the charged megabytes.
  auto config = two_site_grid();
  config.computing_elements.resize(1);  // only ce-a
  sim::Simulator sim;
  grid::Grid grid(sim, config);
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://big", "se-b", 100.0);
  grid.set_catalog(&catalog);

  grid::JobRequest request;
  request.name = "j";
  request.compute_seconds = 10.0;
  request.input_megabytes = 100.0;
  request.input_refs.push_back(grid::DataStageRef{"lfn://big", 100.0});
  grid::JobRecord record;
  grid.submit(request, [&](const grid::JobRecord& r) { record = r; });
  sim.run();

  EXPECT_EQ(record.computing_element, "ce-a");
  EXPECT_DOUBLE_EQ(record.staged_in_megabytes, 300.0);  // 100 MB x penalty 3
  EXPECT_DOUBLE_EQ(record.remote_input_megabytes, 100.0);
  // The wide-area copy left a replica at se-a for the next job.
  EXPECT_TRUE(catalog.has("lfn://big", "se-a"));
}

// ---------------------------------------------------------------------------
// Storage faults: catalog invalidation, SE outages, stage-in failover
// ---------------------------------------------------------------------------

TEST(ReplicaCatalog, InvalidateKeepsEntryForReRegistration) {
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://x", "se-a", 5.0);
  catalog.register_replica("lfn://x", "se-b", 5.0);

  EXPECT_TRUE(catalog.invalidate_replica("lfn://x", "se-a"));
  EXPECT_FALSE(catalog.invalidate_replica("lfn://x", "se-a"));  // already gone
  EXPECT_EQ(catalog.locate("lfn://x"), (std::vector<std::string>{"se-b"}));

  // Losing the last copy keeps the entry (and its size) so a re-derivation
  // can re-register under the same logical name.
  EXPECT_TRUE(catalog.invalidate_replica("lfn://x", "se-b"));
  EXPECT_TRUE(catalog.locate("lfn://x").empty());
  EXPECT_DOUBLE_EQ(catalog.size_mb("lfn://x"), 5.0);
  EXPECT_EQ(catalog.invalidation_count(), 2u);

  catalog.register_replica("lfn://x", "se-c", 5.0);
  EXPECT_EQ(catalog.locate("lfn://x"), (std::vector<std::string>{"se-c"}));

  catalog.unregister("lfn://x");
  EXPECT_TRUE(catalog.locate("lfn://x").empty());
  EXPECT_DOUBLE_EQ(catalog.size_mb("lfn://x"), 0.0);
  EXPECT_EQ(catalog.file_count(), 0u);
}

TEST(ReplicaCatalog, SeAvailabilityView) {
  data::ReplicaCatalog catalog;
  EXPECT_TRUE(catalog.se_available("se-a"));  // unknown SEs are up
  catalog.set_se_available("se-a", false);
  EXPECT_FALSE(catalog.se_available("se-a"));
  EXPECT_TRUE(catalog.se_available("se-b"));
  catalog.set_se_available("se-a", true);
  EXPECT_TRUE(catalog.se_available("se-a"));
}

TEST(StorageOutage, AvailabilityFollowsTheSchedule) {
  sim::Simulator sim;
  grid::StorageElement se(sim, "se", 1.0, 10.0);
  EXPECT_TRUE(se.available_at(0.0));
  EXPECT_DOUBLE_EQ(se.next_available(42.0), 42.0);

  se.set_outages({{100.0, 50.0}, {300.0, 25.0}});
  EXPECT_TRUE(se.available_at(99.0));
  EXPECT_FALSE(se.available_at(100.0));
  EXPECT_FALSE(se.available_at(149.0));
  EXPECT_TRUE(se.available_at(150.0));  // window end is exclusive
  EXPECT_FALSE(se.available_at(310.0));
  EXPECT_DOUBLE_EQ(se.next_available(120.0), 150.0);
  EXPECT_DOUBLE_EQ(se.next_available(310.0), 325.0);
  EXPECT_DOUBLE_EQ(se.next_available(500.0), 500.0);
}

TEST(StorageFaultGrid, StageInFailsOverToTheNextReplica) {
  // The close SE's copy is lost (per-SE loss probability 1), the remote copy
  // on se-a survives: one fault, one failover, and the job still completes.
  auto config = two_site_grid();
  config.computing_elements = {config.computing_elements[1]};  // only ce-b
  config.storage_elements[1].replica_loss_probability = 1.0;   // se-b
  sim::Simulator sim;
  grid::Grid grid(sim, config);
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://big", "se-a", 10.0);
  catalog.register_replica("lfn://big", "se-b", 10.0);
  grid.set_catalog(&catalog);

  grid::JobRequest request;
  request.name = "j";
  request.compute_seconds = 10.0;
  request.input_megabytes = 10.0;
  request.input_refs.push_back(grid::DataStageRef{"lfn://big", 10.0});
  grid::JobRecord record;
  grid.submit(request, [&](const grid::JobRecord& r) { record = r; });
  sim.run();

  EXPECT_EQ(record.state, grid::JobState::kDone);
  EXPECT_TRUE(record.lost_files.empty());
  EXPECT_EQ(record.replica_faults, 1);
  EXPECT_EQ(record.replica_failovers, 1);
  EXPECT_EQ(grid.stats().replica_faults, 1u);
  EXPECT_EQ(grid.stats().replica_failovers, 1u);
  EXPECT_EQ(grid.stats().data_lost_jobs, 0u);
  EXPECT_EQ(catalog.invalidation_count(), 1u);  // the bad copy was dropped
}

TEST(StorageFaultGrid, JobWithNoSurvivingReplicaFailsAsDataLost) {
  // Every copy of the input is gone: resubmission cannot help, so the job
  // fails immediately with the loss spelled out instead of burning retries.
  auto config = two_site_grid();
  config.computing_elements.resize(1);                        // only ce-a
  config.storage_elements[1].replica_loss_probability = 1.0;  // se-b
  config.max_attempts = 5;
  sim::Simulator sim;
  grid::Grid grid(sim, config);
  data::ReplicaCatalog catalog;
  catalog.register_replica("lfn://only", "se-b", 10.0);
  grid.set_catalog(&catalog);

  grid::JobRequest request;
  request.name = "j";
  request.compute_seconds = 10.0;
  request.input_megabytes = 10.0;
  request.input_refs.push_back(grid::DataStageRef{"lfn://only", 10.0});
  grid::JobRecord record;
  grid.submit(request, [&](const grid::JobRecord& r) { record = r; });
  sim.run();

  EXPECT_EQ(record.state, grid::JobState::kFailed);
  EXPECT_EQ(record.lost_files, (std::vector<std::string>{"lfn://only"}));
  EXPECT_EQ(record.attempts, 1);  // not retried: the data is gone, not flaky
  EXPECT_EQ(grid.stats().data_lost_jobs, 1u);
}

// ---------------------------------------------------------------------------
// Cache staleness: a hit must still resolve on the data plane
// ---------------------------------------------------------------------------

TEST(EngineCache, StaleEntryWhoseReplicasVanishedIsInvalidatedNotReplayed) {
  // Warm the cache with replicas registered in catalog A, then point the
  // backend at an empty catalog: the memoized refs no longer resolve, so the
  // second run must invalidate those entries and recompute instead of
  // replaying tokens whose files do not exist anywhere.
  SimRig rig;
  rig.add_chain_services(1, 30.0);
  data::ReplicaCatalog warm;
  rig.backend.set_catalog(&warm);

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.cache = true;
  enactor::Enactor moteur(rig.backend, rig.registry, policy);

  const auto wf = workflow::make_chain(1);
  const auto first = moteur.run({.workflow = wf, .inputs = items("src", 4)});
  EXPECT_EQ(first.failures(), 0u);
  EXPECT_EQ(moteur.invocation_cache()->entry_count(), 4u);

  data::ReplicaCatalog empty;  // every replica of every output "vanished"
  rig.backend.set_catalog(&empty);
  const auto second = moteur.run({.workflow = wf, .inputs = items("src", 4)});
  EXPECT_EQ(second.cache_hits(), 0u);
  EXPECT_EQ(second.submissions(), 4u);  // recomputed, not replayed
  EXPECT_EQ(second.failures(), 0u);
  EXPECT_EQ(moteur.invocation_cache()->totals().invalidations, 4u);
  EXPECT_EQ(moteur.invocation_cache()->totals().hits, 0u);

  // The recomputation repopulated the cache; with the replicas back in the
  // live catalog a third run is served entirely from memory again.
  const auto third = moteur.run({.workflow = wf, .inputs = items("src", 4)});
  EXPECT_EQ(third.cache_hits(), 4u);
  EXPECT_EQ(third.submissions(), 0u);
}

// ---------------------------------------------------------------------------
// Lineage-driven recovery of lost intermediates
// ---------------------------------------------------------------------------

struct FaultyRig {
  sim::Simulator simulator;
  grid::Grid grid;
  enactor::SimGridBackend backend;
  data::ReplicaCatalog catalog;
  services::ServiceRegistry registry;

  static grid::GridConfig config(double loss) {
    grid::GridConfig cfg = grid::GridConfig::constant(10.0);
    cfg.replica_loss_probability = loss;
    return cfg;
  }

  explicit FaultyRig(double loss) : grid(simulator, config(loss)), backend(grid) {
    backend.set_catalog(&catalog);
    for (int i = 0; i < 2; ++i) {
      registry.add(services::make_simulated_service("P" + std::to_string(i), {"in"},
                                                    {"out"},
                                                    JobProfile{30.0, 1.0, 1.0}));
    }
  }
};

TEST(LineageRecovery, ReDerivesLostIntermediatesAndCompletesTheRun) {
  // A lossy storage layer eats replicas of both source items and P0's
  // intermediate outputs. Sources come back by resubmission (the backend
  // re-seeds them), intermediates only through lineage recovery re-firing
  // P0 — with recovery on the run must still drain every tuple cleanly.
  FaultyRig rig(0.35);
  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.failure_policy = enactor::FailurePolicy::kContinue;
  ASSERT_TRUE(policy.lineage_recovery);  // the default: on
  enactor::Enactor moteur(rig.backend, rig.registry, policy);

  const auto result =
      moteur.run({.workflow = workflow::make_chain(2), .inputs = items("src", 8)});
  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), 8u);
  EXPECT_TRUE(result.failure_report.empty());
  // The loss rate is high enough that at least one intermediate needed its
  // producer re-fired (seeded grid RNG: deterministic across runs).
  EXPECT_GT(result.stats.rederived, 0u);
  EXPECT_GT(rig.grid.stats().data_lost_jobs, 0u);
}

TEST(LineageRecovery, DisabledRecoveryLosesTuplesAndListsTheFiles) {
  FaultyRig rig(0.35);
  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.failure_policy = enactor::FailurePolicy::kContinue;
  policy.lineage_recovery = false;
  enactor::Enactor moteur(rig.backend, rig.registry, policy);

  const auto result =
      moteur.run({.workflow = workflow::make_chain(2), .inputs = items("src", 8)});
  EXPECT_GT(result.failures(), 0u);
  EXPECT_EQ(result.stats.rederived, 0u);
  EXPECT_LT(result.sink_outputs.at("sink").size(), 8u);

  // Every definitive loss is a DataLost with its unrecoverable files named,
  // and each lost file is reported exactly once.
  std::size_t files_reported = 0;
  for (const auto& lost : result.failure_report.lost) {
    EXPECT_EQ(lost.status, "DataLost");
    files_reported += lost.files.size();
  }
  EXPECT_GT(files_reported, 0u);
  const std::string json = result.failure_report.to_json();
  EXPECT_NE(json.find("\"files\":[\"lfn://"), std::string::npos);
  const std::string text = result.failure_report.to_text();
  EXPECT_NE(text.find("unrecoverable file lfn://"), std::string::npos);
}

TEST(LineageRecovery, ZeroFaultRunsAreIdenticalWithRecoveryOnAndOff) {
  // Recovery defaults to on; without SE faults it must be unobservable.
  auto run_with = [](bool recovery) {
    SimRig rig;
    rig.add_chain_services(2, 30.0);
    data::ReplicaCatalog catalog;
    rig.backend.set_catalog(&catalog);
    enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
    policy.lineage_recovery = recovery;
    enactor::Enactor moteur(rig.backend, rig.registry, policy);
    return moteur.run({.workflow = workflow::make_chain(2), .inputs = items("src", 6)});
  };
  const auto on = run_with(true);
  const auto off = run_with(false);
  EXPECT_DOUBLE_EQ(on.makespan(), off.makespan());
  EXPECT_EQ(on.submissions(), off.submissions());
  EXPECT_EQ(on.stats.rederived, 0u);
  const auto& a = on.sink_outputs.at("sink");
  const auto& b = off.sink_outputs.at("sink");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].id(), b[j].id());
    EXPECT_EQ(a[j].digest(), b[j].digest());
  }
}

}  // namespace
}  // namespace moteur
