#include "enactor/sim_backend.hpp"

#include "util/error.hpp"

namespace moteur::enactor {

void SimGridBackend::execute(std::shared_ptr<services::Service> service,
                             std::vector<services::Inputs> bindings,
                             Callback on_complete) {
  MOTEUR_REQUIRE(!bindings.empty(), InternalError, "execute with no bindings");

  // One grid job for the whole batch: compute accumulates, transfers
  // accumulate, the middleware overhead is paid once.
  grid::JobRequest request;
  request.name = service->id();
  for (const auto& binding : bindings) {
    const grid::JobRequest profile = service->job_profile(binding);
    request.compute_seconds += profile.compute_seconds;
    request.input_megabytes += profile.input_megabytes;
    request.output_megabytes += profile.output_megabytes;
  }
  if (bindings.size() > 1) {
    request.name += "[x" + std::to_string(bindings.size()) + "]";
  }

  ++jobs_submitted_;
  ++in_flight_;
  const double submit_time = grid_.simulator().now();
  grid_.submit(request, [this, service = std::move(service),
                         bindings = std::move(bindings), on_complete = std::move(on_complete),
                         submit_time](const grid::JobRecord& record) {
    --in_flight_;
    Completion completion;
    completion.submit_time = submit_time;
    completion.start_time = record.run_start_time;
    completion.end_time = record.completion_time;
    completion.job = record;
    if (record.state == grid::JobState::kDone) {
      completion.results.reserve(bindings.size());
      for (const auto& binding : bindings) {
        completion.results.push_back(service->synthesize_outputs(binding));
      }
    } else {
      completion.success = false;
      completion.error = "grid job '" + record.name + "' ended in state " +
                         std::string(grid::to_string(record.state)) + " after " +
                         std::to_string(record.attempts) + " attempts";
    }
    on_complete(std::move(completion));
  });
}

bool SimGridBackend::drive(const std::function<bool()>& done) {
  while (!done()) {
    if (in_flight_ == 0) return false;  // only background events remain
    if (!grid_.simulator().step()) return false;
  }
  return true;
}

}  // namespace moteur::enactor
