#include "grid/ce_health.hpp"

#include "util/log.hpp"

namespace moteur::grid {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "Closed";
    case BreakerState::kOpen: return "Open";
    case BreakerState::kHalfOpen: return "HalfOpen";
  }
  return "?";
}

CeHealth::CeHealth(BreakerPolicy policy) : policy_(policy) {}

void CeHealth::set_transition_listener(TransitionListener listener) {
  on_transition_ = std::move(listener);
}

void CeHealth::set_reroute_listener(RerouteListener listener) {
  on_reroute_ = std::move(listener);
}

void CeHealth::transition(const std::string& ce, Entry& e, BreakerState to, double now) {
  const BreakerState from = e.state;
  e.state = to;
  switch (to) {
    case BreakerState::kOpen:
      e.opened_at = now;
      ++opens_;
      break;
    case BreakerState::kHalfOpen:
      ++probes_;
      break;
    case BreakerState::kClosed:
      e.window.clear();
      e.failures = 0;
      ++closes_;
      break;
  }
  MOTEUR_LOG(kInfo, "breaker") << "CE '" << ce << "' " << to_string(from) << " -> "
                               << to_string(to) << " (failures in window: " << e.failures
                               << ")";
  if (on_transition_) {
    on_transition_(Transition{ce, from, to, now, e.failures});
  }
}

void CeHealth::record(const std::string& ce, bool success, double now) {
  if (!policy_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(ce);
  switch (e.state) {
    case BreakerState::kOpen:
      // Stale outcome from an attempt routed before the trip: ignore, the
      // cooldown clock alone decides when a probe goes out.
      return;
    case BreakerState::kHalfOpen:
      transition(ce, e, success ? BreakerState::kClosed : BreakerState::kOpen, now);
      return;
    case BreakerState::kClosed:
      e.window.push_back(!success);
      if (!success) ++e.failures;
      while (e.window.size() > policy_.window) {
        if (e.window.front()) --e.failures;
        e.window.pop_front();
      }
      if (e.failures >= policy_.threshold) {
        transition(ce, e, BreakerState::kOpen, now);
      }
      return;
  }
}

bool CeHealth::admissible(const std::string& ce, double now) const {
  if (!policy_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(ce);
  if (it == entries_.end()) return true;
  switch (it->second.state) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen:
      return now >= it->second.opened_at + policy_.cooldown_seconds;
    case BreakerState::kHalfOpen: return false;
  }
  return true;
}

void CeHealth::on_routed(const std::string& ce, double now) {
  if (!policy_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(ce);
  if (e.state == BreakerState::kOpen && now >= e.opened_at + policy_.cooldown_seconds) {
    transition(ce, e, BreakerState::kHalfOpen, now);
  }
}

void CeHealth::note_rerouted(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++reroutes_;
  if (on_reroute_) on_reroute_(now);
}

BreakerState CeHealth::state(const std::string& ce) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(ce);
  return it == entries_.end() ? BreakerState::kClosed : it->second.state;
}

std::size_t CeHealth::open_breakers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [name, e] : entries_) {
    if (e.state != BreakerState::kClosed) ++count;
  }
  return count;
}

std::size_t CeHealth::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

std::size_t CeHealth::closes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closes_;
}

std::size_t CeHealth::probes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_;
}

std::size_t CeHealth::reroutes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reroutes_;
}

}  // namespace moteur::grid
