#pragma once

#include <cstddef>
#include <vector>

#include "registration/geometry.hpp"

namespace moteur::registration {

/// A scalar 3-D volume, the stand-in for the paper's 256x256x60 16-bit T1
/// MRIs (we use smaller float volumes; the workflow and algorithms are
/// unchanged). Voxel (i, j, k) sits at world position (i, j, k) * spacing.
class Image3D {
 public:
  Image3D(std::size_t nx, std::size_t ny, std::size_t nz, double spacing = 1.0);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  double spacing() const { return spacing_; }
  std::size_t voxel_count() const { return voxels_.size(); }

  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;

  /// Trilinear interpolation at a world position; 0 outside the volume.
  double sample(const Vec3& world) const;

  /// Central-difference gradient at a voxel (one-sided at the borders).
  Vec3 gradient(std::size_t i, std::size_t j, std::size_t k) const;

  /// World position of a voxel center.
  Vec3 position(std::size_t i, std::size_t j, std::size_t k) const;

  /// World-space bounding box extent.
  Vec3 extent() const;

  /// Resample this image under a rigid transform: output(v) =
  /// this(transform^-1(v)) — how a moved acquisition of the same subject is
  /// synthesized.
  Image3D resampled(const RigidTransform& transform) const;

  /// 2x downsampling by 2x2x2 block averaging; spacing doubles, so world
  /// coordinates are preserved (the basis of coarse-to-fine registration).
  Image3D downsampled() const;

  double min_value() const;
  double max_value() const;
  double mean_value() const;

  const std::vector<float>& voxels() const { return voxels_; }
  std::vector<float>& voxels() { return voxels_; }

 private:
  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return (k * ny_ + j) * nx_ + i;
  }

  std::size_t nx_, ny_, nz_;
  double spacing_;
  std::vector<float> voxels_;
};

/// Normalized cross-correlation of two same-shape images (registration
/// similarity measure); in [-1, 1].
double normalized_cross_correlation(const Image3D& a, const Image3D& b);

}  // namespace moteur::registration
