#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "workflow/graph.hpp"

namespace moteur::workflow {

/// Static graph analyses used by the enactor, the grouping optimizer and the
/// §3.5 performance model. Feedback links are excluded everywhere (analyses
/// operate on the acyclic skeleton).

/// Processor names in a topological order (sources first). Coordination
/// constraints are honored as edges.
std::vector<std::string> topological_order(const Workflow& workflow);

/// Strict ancestors of a processor (everything with a forward path to it,
/// data links and coordination constraints included).
std::set<std::string> ancestors(const Workflow& workflow, const std::string& processor);

/// Strict descendants (everything reachable from it).
std::set<std::string> descendants(const Workflow& workflow, const std::string& processor);

/// A path through the workflow linking an input to an output (§3.5.1).
struct Path {
  std::vector<std::string> services;  // service processors only, in order
  double weight = 0.0;                // sum of per-service weights
};

/// The critical path: the longest source-to-sink path, in number of services
/// (each service weighs 1) or by explicit per-service weights. Grouped
/// processors weigh the size of their member list under unit weights, so
/// grouping does not change the nominal nW of the original graph.
Path critical_path(const Workflow& workflow,
                   const std::map<std::string, double>* service_weights = nullptr);

/// nW: number of services on the critical path (paper §3.5.1).
std::size_t critical_path_length(const Workflow& workflow);

/// Split the workflow into layers separated by synchronization processors:
/// layer k holds every service whose ancestor set contains exactly k
/// synchronization barriers. Workflows containing barriers "may be analyzed
/// as two sub workflows" (§3.5.2); the model applies per layer.
std::vector<std::vector<std::string>> synchronization_layers(const Workflow& workflow);

/// Render the workflow as a GraphViz dot document (debugging/documentation).
std::string to_dot(const Workflow& workflow);

}  // namespace moteur::workflow
