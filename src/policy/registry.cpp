#include "policy/registry.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace moteur::policy {

namespace {

// ---------------------------------------------------------------------------
// Matchmaking built-ins

/// The historical broker ranking: queue estimate plus whatever stage-in
/// estimate the caller supplied (zero when matchmaking blind), exact-tie
/// break drawn from the broker's tie stream only when more than one CE
/// shares the best rank. This must replay the pre-policy-engine decision
/// sequence bit for bit.
class QueueRankPolicy : public MatchmakingPolicy {
 public:
  explicit QueueRankPolicy(std::string name = kDefaultMatchmaking)
      : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

  std::size_t choose(const std::vector<CeCandidate>& candidates,
                     Rng& tie_rng) override {
    double best_rank = 0.0;
    std::vector<std::size_t> best;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double rank = candidates[i].queue_rank + candidates[i].stage_in_seconds;
      if (best.empty() || rank < best_rank) {
        best_rank = rank;
        best = {i};
      } else if (rank == best_rank) {
        best.push_back(i);
      }
    }
    if (best.size() > 1) {
      const auto pick = static_cast<std::size_t>(
          tie_rng.uniform_int(0, static_cast<std::int64_t>(best.size()) - 1));
      return best[pick];
    }
    return best.front();
  }

 private:
  std::string name_;
};

/// Same combined ranking as queue-rank, but self-activates the stage-in
/// estimator: the data-aware matchmaking previously gated behind
/// GridConfig::data_aware_matchmaking, expressed as a selectable policy.
class DataGravityPolicy : public QueueRankPolicy {
 public:
  DataGravityPolicy() : QueueRankPolicy("data-gravity") {}
  bool wants_stage_in() const override { return true; }
};

/// Lexicographic (stage-in seconds, queue rank): data locality dominates,
/// queue pressure only separates equally-close CEs.
class LocalityFirstPolicy : public MatchmakingPolicy {
 public:
  const std::string& name() const override { return name_; }
  bool wants_stage_in() const override { return true; }

  std::size_t choose(const std::vector<CeCandidate>& candidates,
                     Rng& tie_rng) override {
    std::vector<std::size_t> best;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (best.empty()) {
        best = {i};
        continue;
      }
      const CeCandidate& lead = candidates[best.front()];
      const CeCandidate& c = candidates[i];
      if (c.stage_in_seconds < lead.stage_in_seconds ||
          (c.stage_in_seconds == lead.stage_in_seconds &&
           c.queue_rank < lead.queue_rank)) {
        best = {i};
      } else if (c.stage_in_seconds == lead.stage_in_seconds &&
                 c.queue_rank == lead.queue_rank) {
        best.push_back(i);
      }
    }
    if (best.size() > 1) {
      const auto pick = static_cast<std::size_t>(
          tie_rng.uniform_int(0, static_cast<std::int64_t>(best.size()) - 1));
      return best[pick];
    }
    return best.front();
  }

 private:
  std::string name_ = "locality-first";
};

/// Power-of-two-choices: sample two distinct candidates from a private
/// deterministic substream and keep the better-ranked one. Never touches
/// the broker tie stream, so enabling it for one run cannot perturb the
/// draw sequence of concurrent default-policy runs.
class KChoicesPolicy : public MatchmakingPolicy {
 public:
  explicit KChoicesPolicy(const Rng& base) : rng_(base.fork("k-choices")) {}

  const std::string& name() const override { return name_; }

  std::size_t choose(const std::vector<CeCandidate>& candidates,
                     Rng& /*tie_rng*/) override {
    const std::size_t n = candidates.size();
    if (n == 1) return 0;
    const auto first = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto second = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (second >= first) ++second;
    const auto rank = [&](std::size_t i) {
      return candidates[i].queue_rank + candidates[i].stage_in_seconds;
    };
    return rank(second) < rank(first) ? second : first;
  }

 private:
  std::string name_ = "k-choices";
  Rng rng_;
};

// ---------------------------------------------------------------------------
// Placement built-ins

/// The historical behavior: every attempt re-enters ordinary matchmaking
/// with no avoidance constraint.
class RematchPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override { return name_; }
  std::vector<std::string> avoid(const PlacementContext&) override { return {}; }

 private:
  std::string name_ = kDefaultPlacement;
};

/// Steer retries away from the CE the immediately previous attempt ran on.
class AvoidPreviousPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> avoid(const PlacementContext& ctx) override {
    if (ctx.tried_ces == nullptr || ctx.tried_ces->empty()) return {};
    return {ctx.tried_ces->back()};
  }

 private:
  std::string name_ = "avoid-previous";
};

/// Steer retries away from every CE earlier attempts already touched.
class SpreadPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> avoid(const PlacementContext& ctx) override {
    if (ctx.tried_ces == nullptr) return {};
    return *ctx.tried_ces;
  }

 private:
  std::string name_ = "spread";
};

// ---------------------------------------------------------------------------
// Replica built-ins

/// The historical behavior: register fresh replicas on the producer's close
/// SE only, and probe the close SE first on stage-in (rotating it to the
/// front of the registration-ordered candidate list).
class CloseSePolicy : public ReplicaPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> placement_targets(
      const std::string& close_se, const std::vector<std::string>&) override {
    return {close_se};
  }

  void probe_order(std::vector<std::string>& candidates,
                   const std::string& close_se) override {
    const auto close_pos = std::find(candidates.begin(), candidates.end(), close_se);
    if (close_pos != candidates.end() && close_pos != candidates.begin()) {
      std::rotate(candidates.begin(), close_pos, close_pos + 1);
    }
  }

 private:
  std::string name_ = kDefaultReplica;
};

/// Register fresh replicas on every SE (close SE included), trading
/// transfer volume at write time for locality on every later read.
class BroadcastPolicy : public ReplicaPolicy {
 public:
  const std::string& name() const override { return name_; }

  std::vector<std::string> placement_targets(
      const std::string& close_se,
      const std::vector<std::string>& all_ses) override {
    if (all_ses.empty()) return {close_se};
    return all_ses;
  }

  void probe_order(std::vector<std::string>& candidates,
                   const std::string& close_se) override {
    const auto close_pos = std::find(candidates.begin(), candidates.end(), close_se);
    if (close_pos != candidates.end() && close_pos != candidates.begin()) {
      std::rotate(candidates.begin(), close_pos, close_pos + 1);
    }
  }

 private:
  std::string name_ = "broadcast";
};

// ---------------------------------------------------------------------------
// Admission built-ins

/// The historical behavior: grant each run the WRR share it asked for.
class WeightedAdmission : public AdmissionPolicy {
 public:
  const std::string& name() const override { return name_; }
  std::size_t weight(const std::string&, std::size_t requested) override {
    return requested;
  }

 private:
  std::string name_ = kDefaultAdmission;
};

/// Ignore requested weights: every run gets one grant per gate visit.
class RoundRobinAdmission : public AdmissionPolicy {
 public:
  const std::string& name() const override { return name_; }
  std::size_t weight(const std::string&, std::size_t) override { return 1; }

 private:
  std::string name_ = "round-robin";
};

// ---------------------------------------------------------------------------

std::string known(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

PolicyRegistry::PolicyRegistry() {
  register_matchmaking(kDefaultMatchmaking, [](const Rng&) {
    return std::make_unique<QueueRankPolicy>();
  });
  register_matchmaking("data-gravity", [](const Rng&) {
    return std::make_unique<DataGravityPolicy>();
  });
  register_matchmaking("locality-first", [](const Rng&) {
    return std::make_unique<LocalityFirstPolicy>();
  });
  register_matchmaking("k-choices", [](const Rng& base) {
    return std::make_unique<KChoicesPolicy>(base);
  });

  register_placement(kDefaultPlacement,
                     [] { return std::make_unique<RematchPolicy>(); });
  register_placement("avoid-previous",
                     [] { return std::make_unique<AvoidPreviousPolicy>(); });
  register_placement("spread", [] { return std::make_unique<SpreadPolicy>(); });

  register_replica(kDefaultReplica, [] { return std::make_unique<CloseSePolicy>(); });
  register_replica("broadcast", [] { return std::make_unique<BroadcastPolicy>(); });

  register_admission(kDefaultAdmission,
                     [] { return std::make_unique<WeightedAdmission>(); });
  register_admission("round-robin",
                     [] { return std::make_unique<RoundRobinAdmission>(); });
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_matchmaking(const std::string& name,
                                          MatchmakingFactory factory) {
  matchmaking_[name] = std::move(factory);
}

void PolicyRegistry::register_placement(const std::string& name,
                                        PlacementFactory factory) {
  placement_[name] = std::move(factory);
}

void PolicyRegistry::register_replica(const std::string& name,
                                      ReplicaFactory factory) {
  replica_[name] = std::move(factory);
}

void PolicyRegistry::register_admission(const std::string& name,
                                        AdmissionFactory factory) {
  admission_[name] = std::move(factory);
}

std::unique_ptr<MatchmakingPolicy> PolicyRegistry::make_matchmaking(
    const std::string& name, const Rng& base) const {
  const auto it = matchmaking_.find(name);
  MOTEUR_REQUIRE(it != matchmaking_.end(), ParseError,
                 "unknown matchmaking policy '" + name +
                     "' (known: " + known(matchmaking_names()) + ")");
  return it->second(base);
}

std::unique_ptr<PlacementPolicy> PolicyRegistry::make_placement(
    const std::string& name) const {
  const auto it = placement_.find(name);
  MOTEUR_REQUIRE(it != placement_.end(), ParseError,
                 "unknown placement policy '" + name +
                     "' (known: " + known(placement_names()) + ")");
  return it->second();
}

std::unique_ptr<ReplicaPolicy> PolicyRegistry::make_replica(
    const std::string& name) const {
  const auto it = replica_.find(name);
  MOTEUR_REQUIRE(it != replica_.end(), ParseError,
                 "unknown replica policy '" + name +
                     "' (known: " + known(replica_names()) + ")");
  return it->second();
}

std::unique_ptr<AdmissionPolicy> PolicyRegistry::make_admission(
    const std::string& name) const {
  const auto it = admission_.find(name);
  MOTEUR_REQUIRE(it != admission_.end(), ParseError,
                 "unknown admission policy '" + name +
                     "' (known: " + known(admission_names()) + ")");
  return it->second();
}

const std::string& PolicyRegistry::check_matchmaking(const std::string& name,
                                                     const std::string& flag) const {
  MOTEUR_REQUIRE(matchmaking_.count(name) != 0, ParseError,
                 flag + " names unknown matchmaking policy '" + name +
                     "' (known: " + known(matchmaking_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_placement(const std::string& name,
                                                   const std::string& flag) const {
  MOTEUR_REQUIRE(placement_.count(name) != 0, ParseError,
                 flag + " names unknown placement policy '" + name +
                     "' (known: " + known(placement_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_replica(const std::string& name,
                                                 const std::string& flag) const {
  MOTEUR_REQUIRE(replica_.count(name) != 0, ParseError,
                 flag + " names unknown replica policy '" + name +
                     "' (known: " + known(replica_names()) + ")");
  return name;
}

const std::string& PolicyRegistry::check_admission(const std::string& name,
                                                   const std::string& flag) const {
  MOTEUR_REQUIRE(admission_.count(name) != 0, ParseError,
                 flag + " names unknown admission policy '" + name +
                     "' (known: " + known(admission_names()) + ")");
  return name;
}

bool PolicyRegistry::matchmaking_wants_stage_in(const std::string& name) const {
  const Rng probe(0);
  return make_matchmaking(name, probe)->wants_stage_in();
}

std::vector<std::string> PolicyRegistry::matchmaking_names() const {
  std::vector<std::string> names;
  names.reserve(matchmaking_.size());
  for (const auto& [name, factory] : matchmaking_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::placement_names() const {
  std::vector<std::string> names;
  names.reserve(placement_.size());
  for (const auto& [name, factory] : placement_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::replica_names() const {
  std::vector<std::string> names;
  names.reserve(replica_.size());
  for (const auto& [name, factory] : replica_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::admission_names() const {
  std::vector<std::string> names;
  names.reserve(admission_.size());
  for (const auto& [name, factory] : admission_) names.push_back(name);
  return names;
}

}  // namespace moteur::policy
