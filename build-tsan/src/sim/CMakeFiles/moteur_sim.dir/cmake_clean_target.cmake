file(REMOVE_RECURSE
  "libmoteur_sim.a"
)
