#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "enactor/backend.hpp"
#include "util/thread_pool.hpp"

namespace moteur::enactor {

/// Runs invocations for real, on worker threads — the paper's §3.1 answer to
/// SOAP stacks without asynchronous calls: "asynchronous calls to web
/// services need to be implemented at the workflow enactor level, by
/// spawning independent system threads for each processor being executed".
///
/// Services compute in workers; completions are queued and delivered to the
/// single-threaded enactor core from drive(), so enactor state needs no
/// locking.
class ThreadedBackend : public ExecutionBackend {
 public:
  /// `threads` = 0 picks the hardware concurrency.
  explicit ThreadedBackend(std::size_t threads = 0);

  void execute(std::shared_ptr<services::Service> service,
               std::vector<services::Inputs> bindings, Callback on_complete) override;

  /// Wall-clock seconds since construction.
  double now() const override;

  bool drive(const std::function<bool()>& done) override;

  std::size_t tasks_executed() const { return tasks_executed_; }

 private:
  struct Done {
    Completion completion;
    Callback callback;
  };

  ThreadPool pool_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Done> completed_;
  std::size_t in_flight_ = 0;
  std::size_t tasks_executed_ = 0;
};

}  // namespace moteur::enactor
