#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "workflow/graph.hpp"

namespace moteur::model {

/// Generalization of the §3.5 makespan model from the critical-path chain to
/// arbitrary (dot-iteration) workflow DAGs, including synchronization
/// barriers. Assumes, like the paper: per-(service, data) duration constant
/// in j (T_P per service, overhead included), unlimited grid capacity, no
/// loops, dot products only (every plain service processes exactly n_d
/// items; everything downstream of a barrier processes 1).
///
/// Recurrences (completion time of service P on data j):
///  - DSP:  c(P, j) = max over preds c(pred, j) + T_P
///  - DP:   stage barriers make all data leave P together:
///          f(P) = max over preds f(pred) + T_P   (independent of n_d)
///  - SP:   unit-capacity pipeline:
///          c(P, j) = max(max preds c(pred, j), c(P, j-1)) + T_P
///  - NOP:  stage barriers + unit capacity:
///          f(P) = max over preds f(pred) + n_d * T_P
/// A synchronization barrier B fires once everything upstream delivered:
/// start(B) = max over preds of their LAST completion; downstream of B the
/// effective data count is 1.
struct DagPolicyPredictions {
  double sequential = 0.0;  // NOP
  double dp = 0.0;
  double sp = 0.0;
  double dsp = 0.0;
};

/// `service_seconds` maps every service-processor name to its T_P. Throws
/// GraphError on feedback links or cross-iteration processors, InternalError
/// on missing service times.
DagPolicyPredictions predict_dag_makespan(
    const workflow::Workflow& workflow,
    const std::map<std::string, double>& service_seconds, std::size_t n_d);

}  // namespace moteur::model
