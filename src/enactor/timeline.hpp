#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "data/token.hpp"
#include "enactor/backend.hpp"
#include "grid/ce_health.hpp"
#include "grid/job.hpp"

namespace moteur::enactor {

/// One service invocation as observed by the enactor. Times are backend
/// times (virtual seconds on the simulated grid, wall seconds threaded).
struct InvocationTrace {
  std::string processor;
  /// Iteration indices of the data sets processed (one entry per binding;
  /// batched submissions carry several).
  std::vector<data::IndexVector> indices;
  double submit_time = 0.0;  // enactor handed the call to the backend
  double start_time = 0.0;   // payload began (queue exit on the grid)
  double end_time = 0.0;     // results available
  bool failed = false;
  /// Final status of this execution (kSkipped for poisoned-input skips).
  OutcomeStatus status = OutcomeStatus::kOk;
  /// Never executed: a poisoned input token was consumed instead.
  bool skipped = false;
  /// Which resubmission attempt this execution was (1 = first try).
  std::size_t attempt = 1;
  /// The submission was already resolved (by a racing clone or a definitive
  /// loss) when this execution completed; its result was discarded.
  bool superseded = false;
  /// Grid-level record when the simulated backend executed the call.
  std::optional<grid::JobRecord> job;

  double span_seconds() const { return end_time - submit_time; }
  /// Short label of the data processed, e.g. "D0" or "D0,D1".
  std::string data_label() const;
};

/// One circuit-breaker state change during the run.
struct BreakerTransitionTrace {
  double time = 0.0;
  std::string computing_element;
  grid::BreakerState from = grid::BreakerState::kClosed;
  grid::BreakerState to = grid::BreakerState::kClosed;
  std::size_t failures_in_window = 0;
};

/// Chronology of a whole enactment.
class Timeline {
 public:
  void add(InvocationTrace trace);
  void add_breaker(BreakerTransitionTrace transition);

  const std::vector<InvocationTrace>& traces() const { return traces_; }
  const std::vector<BreakerTransitionTrace>& breaker_transitions() const {
    return breaker_transitions_;
  }
  std::size_t invocation_count() const { return traces_.size(); }

  /// Last completion time over all non-superseded traces (0 if empty) —
  /// a straggler whose clone already delivered does not stretch the run.
  double makespan() const;

  /// Traces of one processor, by submit time.
  std::vector<const InvocationTrace*> for_processor(const std::string& processor) const;

  /// Total grid overhead across traces carrying a job record.
  double total_overhead_seconds() const;

 private:
  std::vector<InvocationTrace> traces_;
  std::vector<BreakerTransitionTrace> breaker_transitions_;
};

}  // namespace moteur::enactor
