
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/wrapper_service.cpp" "examples/CMakeFiles/wrapper_service.dir/wrapper_service.cpp.o" "gcc" "examples/CMakeFiles/wrapper_service.dir/wrapper_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/task/CMakeFiles/moteur_task.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/app/CMakeFiles/moteur_app.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/enactor/CMakeFiles/moteur_enactor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/services/CMakeFiles/moteur_services.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/grid/CMakeFiles/moteur_grid.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/moteur_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/moteur_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workflow/CMakeFiles/moteur_workflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/moteur_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/moteur_xml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/registration/CMakeFiles/moteur_registration.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/moteur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
