#include "grid/storage_element.hpp"

#include <algorithm>

namespace moteur::grid {

StorageElement::StorageElement(sim::Simulator& simulator, std::string name,
                               double latency_seconds, double bandwidth_mb_per_s,
                               std::size_t channels)
    : simulator_(simulator),
      name_(std::move(name)),
      latency_seconds_(latency_seconds),
      bandwidth_mb_per_s_(bandwidth_mb_per_s),
      channels_(simulator, channels) {}

void StorageElement::set_outages(std::vector<StorageOutageWindow> outages) {
  outages_ = std::move(outages);
  std::sort(outages_.begin(), outages_.end(),
            [](const StorageOutageWindow& a, const StorageOutageWindow& b) {
              return a.start_seconds < b.start_seconds;
            });
}

bool StorageElement::available_at(double t) const {
  for (const auto& w : outages_) {
    if (t < w.start_seconds) return true;  // sorted: no later window covers t
    if (t < w.start_seconds + w.duration_seconds) return false;
  }
  return true;
}

double StorageElement::next_available(double t) const {
  for (const auto& w : outages_) {
    if (t < w.start_seconds) return t;
    if (t < w.start_seconds + w.duration_seconds) return w.start_seconds + w.duration_seconds;
  }
  return t;
}

double StorageElement::nominal_seconds(double megabytes) const {
  if (megabytes <= 0.0) return 0.0;
  return latency_seconds_ + megabytes / bandwidth_mb_per_s_;
}

void StorageElement::transfer(double megabytes, std::function<void(double)> on_done) {
  const double seconds = nominal_seconds(megabytes);
  if (seconds <= 0.0) {
    simulator_.schedule(0.0, [on_done = std::move(on_done)] { on_done(0.0); });
    return;
  }
  channels_.acquire([this, seconds, on_done = std::move(on_done)]() mutable {
    simulator_.schedule(seconds, [this, seconds, on_done = std::move(on_done)] {
      channels_.release();
      on_done(seconds);
    });
  });
}

double StorageElement::pairwise_seconds(const StorageElement& from,
                                        double megabytes) const {
  if (megabytes <= 0.0) return 0.0;
  const double bandwidth = std::min(bandwidth_mb_per_s_, from.bandwidth_mb_per_s_);
  return latency_seconds_ + from.latency_seconds_ + megabytes / bandwidth;
}

void StorageElement::transfer_from(const StorageElement& from, double megabytes,
                                   std::function<void(double)> on_done) {
  const double seconds = pairwise_seconds(from, megabytes);
  if (seconds <= 0.0) {
    simulator_.schedule(0.0, [on_done = std::move(on_done)] { on_done(0.0); });
    return;
  }
  channels_.acquire([this, seconds, on_done = std::move(on_done)]() mutable {
    simulator_.schedule(seconds, [this, seconds, on_done = std::move(on_done)] {
      channels_.release();
      on_done(seconds);
    });
  });
}

}  // namespace moteur::grid
