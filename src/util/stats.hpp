#pragma once

#include <cstddef>
#include <vector>

namespace moteur {

/// Incremental mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 when all y equal (perfect fit
  /// of a constant) or when residuals vanish.
  double r_squared = 0.0;

  double operator()(double x) const { return intercept + slope * x; }
};

/// Least-squares regression over paired samples. Requires xs.size() ==
/// ys.size() and at least two distinct x values.
LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

/// p-th percentile (p in [0,100]) by linear interpolation between order
/// statistics. Requires a non-empty input; the input vector is copied.
double percentile(std::vector<double> values, double p);

double mean_of(const std::vector<double>& values);
double stddev_of(const std::vector<double>& values);

}  // namespace moteur
