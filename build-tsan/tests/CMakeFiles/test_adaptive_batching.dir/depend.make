# Empty dependencies file for test_adaptive_batching.
# This may be replaced when dependencies are built.
