#include "sim/resource.hpp"

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace moteur::sim {

Resource::Resource(Simulator& simulator, std::size_t capacity)
    : simulator_(simulator), capacity_(capacity) {
  MOTEUR_REQUIRE(capacity >= 1, InternalError, "Resource: capacity must be >= 1");
}

void Resource::acquire(std::function<void()> on_granted) {
  if (in_use_ < capacity_) {
    ++in_use_;
    on_granted();
  } else {
    waiting_.push_back(std::move(on_granted));
  }
}

void Resource::release() {
  MOTEUR_REQUIRE(in_use_ > 0, InternalError, "Resource::release without acquire");
  if (waiting_.empty()) {
    --in_use_;
    return;
  }
  // Hand the slot directly to the oldest waiter; in_use_ stays constant.
  std::function<void()> next = std::move(waiting_.front());
  waiting_.pop_front();
  simulator_.schedule(0.0, std::move(next));
}

}  // namespace moteur::sim
