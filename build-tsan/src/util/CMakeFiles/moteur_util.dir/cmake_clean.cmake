file(REMOVE_RECURSE
  "CMakeFiles/moteur_util.dir/log.cpp.o"
  "CMakeFiles/moteur_util.dir/log.cpp.o.d"
  "CMakeFiles/moteur_util.dir/rng.cpp.o"
  "CMakeFiles/moteur_util.dir/rng.cpp.o.d"
  "CMakeFiles/moteur_util.dir/stats.cpp.o"
  "CMakeFiles/moteur_util.dir/stats.cpp.o.d"
  "CMakeFiles/moteur_util.dir/strings.cpp.o"
  "CMakeFiles/moteur_util.dir/strings.cpp.o.d"
  "CMakeFiles/moteur_util.dir/thread_pool.cpp.o"
  "CMakeFiles/moteur_util.dir/thread_pool.cpp.o.d"
  "libmoteur_util.a"
  "libmoteur_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moteur_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
