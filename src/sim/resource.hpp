#pragma once

#include <cstddef>
#include <deque>
#include <functional>

namespace moteur::sim {

class Simulator;

/// Capacity-limited FCFS resource: the generic building block for batch
/// queues (worker-node slots), broker submission pipelines and network links.
///
/// Callers request a slot with acquire(); the callback fires — synchronously
/// if a slot is free, otherwise later in FCFS order — once the slot is
/// granted. The holder must call release() exactly once when done.
class Resource {
 public:
  Resource(Simulator& simulator, std::size_t capacity);

  /// Request one slot. `on_granted` runs when the slot is assigned.
  void acquire(std::function<void()> on_granted);

  /// Return one slot; grants it to the oldest waiter, if any. The waiter's
  /// callback is dispatched through the simulator at the current time (not
  /// inline) so release() never re-enters caller code.
  void release();

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiting_.size(); }

 private:
  Simulator& simulator_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<std::function<void()>> waiting_;
};

}  // namespace moteur::sim
