#include "enactor/enactor.hpp"

#include <memory>
#include <utility>

#include "enactor/engine.hpp"
#include "obs/recorder.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace moteur::enactor {

EventSubscriber progress_subscriber(std::function<void(const ProgressEvent&)> listener) {
  return [listener = std::move(listener)](const obs::RunEvent& e) {
    ProgressEvent p;
    switch (e.kind) {
      case obs::RunEvent::Kind::kAttemptStarted:
        p.kind = ProgressEvent::Kind::kSubmitted;
        break;
      case obs::RunEvent::Kind::kInvocationCompleted:
        p.kind = ProgressEvent::Kind::kCompleted;
        break;
      case obs::RunEvent::Kind::kInvocationFailed:
        p.kind = ProgressEvent::Kind::kFailed;
        break;
      case obs::RunEvent::Kind::kRetryScheduled:
        p.kind = ProgressEvent::Kind::kRetried;
        break;
      case obs::RunEvent::Kind::kWatchdogFired:
        p.kind = ProgressEvent::Kind::kTimedOut;
        break;
      case obs::RunEvent::Kind::kProcessorFinished:
        p.kind = ProgressEvent::Kind::kProcessorFinished;
        break;
      case obs::RunEvent::Kind::kInvocationSkipped:
        p.kind = ProgressEvent::Kind::kSkipped;
        break;
      default:
        return;  // run/invocation/attempt lifecycle details stay internal
    }
    p.processor = e.processor;
    p.tuples = e.tuples;
    p.time = e.time;
    p.attempt = e.attempt == 0 ? 1 : e.attempt;
    p.total_invocations = e.total_invocations;
    p.total_submissions = e.total_submissions;
    listener(p);
  };
}

const char* kind_name(ProgressEvent::Kind kind) {
  switch (kind) {
    case ProgressEvent::Kind::kSubmitted: return "Submitted";
    case ProgressEvent::Kind::kCompleted: return "Completed";
    case ProgressEvent::Kind::kFailed: return "Failed";
    case ProgressEvent::Kind::kRetried: return "Retried";
    case ProgressEvent::Kind::kTimedOut: return "TimedOut";
    case ProgressEvent::Kind::kProcessorFinished: return "ProcessorFinished";
    case ProgressEvent::Kind::kSkipped: return "Skipped";
  }
  return "?";
}

Enactor::Enactor(ExecutionBackend& backend, services::ServiceRegistry& registry,
                 EnactmentPolicy policy)
    : backend_(backend), registry_(registry), policy_(policy) {}

Enactor::~Enactor() = default;

EnactmentResult Enactor::run(const RunRequest& request) {
  // Assemble this run's subscriber set: explicit subscribers, then the
  // recorder — all fed from one stream.
  std::vector<EventSubscriber> subscribers = subscribers_;
  if (recorder_ != nullptr) {
    subscribers.push_back(
        [recorder = recorder_](const obs::RunEvent& e) { recorder->on_event(e); });
  }

  // Service-scope backend events (SE→SE transfers) feed the same stream as
  // run events for the duration of this run; detached before returning.
  auto sink_subscribers = std::make_shared<std::vector<EventSubscriber>>(subscribers);
  backend_.set_event_sink([sink_subscribers](const obs::RunEvent& e) {
    for (const auto& subscriber : *sink_subscribers) subscriber(e);
  });

  const EnactmentPolicy& effective = request.policy ? *request.policy : policy_;
  Engine::Options options;
  options.run_id = request.name.empty() ? request.workflow.name() : request.name;
  if (effective.cache) {
    // The memoization store outlives the run: sequential runs through one
    // enactor share it, so content-identical repeats hit.
    if (!cache_) cache_ = std::make_unique<data::InvocationCache>();
    options.cache = cache_.get();
  }

  // Engines hold shared ownership internally: every callback handed to the
  // backend guards a weak_ptr, so stragglers completing after this run
  // cannot touch a dead engine (see engine.hpp).
  auto engine = std::make_shared<Engine>(
      backend_, registry_, effective, request.resolver, std::move(subscribers),
      request.workflow, request.inputs, std::move(options));
  engine->start();

  try {
    while (!engine->finished()) {
      const bool reached = backend_.drive([&engine] { return engine->finished(); });
      if (reached) break;
      if (!engine->try_unstall() && !engine->finished()) {
        throw EnactmentError("workflow deadlocked; unfinished processors: " +
                             engine->stuck_processors());
      }
    }
  } catch (...) {
    backend_.set_event_sink(nullptr);
    throw;
  }
  backend_.set_event_sink(nullptr);

  EnactmentResult result = engine->finish();
  MOTEUR_LOG(kInfo, "enactor") << "run '" << request.workflow.name() << "' policy="
                               << effective.name()
                               << " makespan=" << result.makespan()
                               << "s invocations=" << result.invocations()
                               << " submissions=" << result.submissions()
                               << " retries=" << result.retries()
                               << " timeouts=" << result.timeouts()
                               << " failures=" << result.failures()
                               << " skipped=" << result.skipped()
                               << " cache_hits=" << result.cache_hits();
  return result;
}

}  // namespace moteur::enactor
