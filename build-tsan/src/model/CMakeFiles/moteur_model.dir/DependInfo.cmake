
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/dag.cpp" "src/model/CMakeFiles/moteur_model.dir/dag.cpp.o" "gcc" "src/model/CMakeFiles/moteur_model.dir/dag.cpp.o.d"
  "/root/repo/src/model/makespan.cpp" "src/model/CMakeFiles/moteur_model.dir/makespan.cpp.o" "gcc" "src/model/CMakeFiles/moteur_model.dir/makespan.cpp.o.d"
  "/root/repo/src/model/metrics.cpp" "src/model/CMakeFiles/moteur_model.dir/metrics.cpp.o" "gcc" "src/model/CMakeFiles/moteur_model.dir/metrics.cpp.o.d"
  "/root/repo/src/model/probabilistic.cpp" "src/model/CMakeFiles/moteur_model.dir/probabilistic.cpp.o" "gcc" "src/model/CMakeFiles/moteur_model.dir/probabilistic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/moteur_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workflow/CMakeFiles/moteur_workflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/moteur_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/moteur_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
