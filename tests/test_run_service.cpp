// Multi-tenant RunService: concurrent runs over one shared backend, fault
// isolation between tenants, fair-share admission, cancellation mid-run,
// and the threaded backend under real concurrency (run under TSan by the
// tsan-enactor preset).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/run_request.hpp"
#include "enactor/sim_backend.hpp"
#include "enactor/threaded_backend.hpp"
#include "grid/grid.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "service/run_service.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "workflow/patterns.hpp"

namespace moteur::service {
namespace {

using services::FunctionalService;
using services::Inputs;
using services::JobProfile;
using services::Result;

data::InputDataSet items(const std::string& source, std::size_t count) {
  data::InputDataSet ds;
  ds.declare_input(source);
  for (std::size_t j = 0; j < count; ++j) {
    ds.add_item(source, "item" + std::to_string(j));
  }
  return ds;
}

// A linear chain whose processors all carry `prefix` in their names, so a
// failure report entry can be attributed to exactly one tenant.
workflow::Workflow prefixed_chain(const std::string& prefix, std::size_t stages) {
  workflow::Workflow wf(prefix);
  wf.add_source("src");
  std::string prev = "src";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string name = prefix + "-p" + std::to_string(i);
    wf.add_processor(name, {"in"}, {"out"});
    wf.link(prev, "out", name, "in");
    prev = name;
  }
  wf.add_sink("sink");
  wf.link(prev, "out", "sink", "in");
  return wf;
}

enactor::RunRequest make_request(const std::string& name,
                                 const workflow::Workflow& wf,
                                 std::size_t count) {
  enactor::RunRequest request;
  request.name = name;
  request.workflow = wf;
  request.inputs = items("src", count);
  return request;
}

// ---------------------------------------------------------------------------
// Simulated backend: determinism, isolation, fair share
// ---------------------------------------------------------------------------

struct ServiceRig {
  sim::Simulator simulator;
  grid::Grid grid;
  enactor::SimGridBackend backend;
  services::ServiceRegistry registry;

  explicit ServiceRig(grid::GridConfig config)
      : grid(simulator, config), backend(grid) {}

  void add_prefixed_chain(const std::string& prefix, std::size_t stages,
                          double compute_seconds) {
    for (std::size_t i = 0; i < stages; ++i) {
      registry.add(services::make_simulated_service(
          prefix + "-p" + std::to_string(i), {"in"}, {"out"},
          JobProfile{compute_seconds}));
    }
  }
};

TEST(RunService, ConcurrentRunsProduceIsolatedResults) {
  grid::GridConfig cfg = grid::GridConfig::constant(5.0, 4096, 17);
  cfg.failure_probability = 0.35;
  cfg.max_attempts = 1;  // every grid-level failure is visible to the enactor
  ServiceRig rig(cfg);
  for (const char* prefix : {"alpha", "beta", "gamma"}) {
    rig.add_prefixed_chain(prefix, 2, 20.0);
  }

  enactor::EnactmentPolicy policy = enactor::EnactmentPolicy::sp_dp();
  policy.retry = enactor::RetryPolicy::resubmit(2);
  policy.failure_policy = enactor::FailurePolicy::kContinue;

  RunServiceConfig config;
  config.admission.max_active = 3;
  config.admission.max_inflight = 6;
  config.defaults.policy = policy;
  RunService service(rig.backend, rig.registry, config);

  std::vector<enactor::RunRequest> requests;
  for (const char* prefix : {"alpha", "beta", "gamma"}) {
    requests.push_back(make_request(prefix, prefixed_chain(prefix, 2), 10));
  }
  auto handles = service.submit_all(std::move(requests));
  ASSERT_EQ(handles.size(), 3u);

  std::size_t total_failures = 0;
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait(), RunState::kFinished) << handle.id();
    const auto& result = handle.result();
    EXPECT_EQ(result.run_id, handle.id());
    // Continue-policy accounting: every source item either reached the sink
    // or is accounted for in this run's own failure report.
    const auto sink = result.sink_outputs.find("sink");
    const std::size_t delivered =
        sink == result.sink_outputs.end() ? 0 : sink->second.size();
    std::size_t poisoned = 0;
    for (const auto& [_, count] : result.failure_report.poisoned_at_sink) {
      poisoned += count;
    }
    EXPECT_EQ(delivered + poisoned, 10u) << handle.id();
    total_failures += result.failures() + result.skipped();
    // Isolation: the report references only this tenant's processors.
    const std::string prefix = handle.id() + "-";
    for (const auto& lost : result.failure_report.lost) {
      EXPECT_EQ(lost.processor.rfind(prefix, 0), 0u) << lost.processor;
    }
    for (const auto& skipped : result.failure_report.skipped) {
      EXPECT_EQ(skipped.processor.rfind(prefix, 0), 0u) << skipped.processor;
      EXPECT_EQ(skipped.origin_processor.rfind(prefix, 0), 0u)
          << skipped.origin_processor;
    }
  }
  // The injected fault rate makes losses overwhelmingly likely; if the seed
  // ever yields a clean triple run the isolation assertions are vacuous, so
  // pin the expectation here.
  EXPECT_GT(total_failures, 0u);
  service.wait_idle();
}

TEST(RunService, FairShareKeepsSmallRunResponsive) {
  const auto make_rig = [] {
    auto rig = std::make_unique<ServiceRig>(grid::GridConfig::constant(0.0));
    rig->add_prefixed_chain("big", 1, 10.0);
    rig->add_prefixed_chain("small", 1, 10.0);
    return rig;
  };
  RunServiceConfig config;
  config.admission.max_active = 2;
  config.admission.max_inflight = 4;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();

  // Baseline: the small run alone on an identical rig.
  double solo = 0.0;
  {
    auto rig = make_rig();
    RunService service(rig->backend, rig->registry, config);
    auto handle =
        service.submit(make_request("small", prefixed_chain("small", 1), 12));
    ASSERT_EQ(handle.wait(), RunState::kFinished);
    solo = handle.result().makespan();
  }
  ASSERT_GT(solo, 0.0);

  // Contended: a 126-item run and a 12-item run sharing the 4-slot gate.
  auto rig = make_rig();
  RunService service(rig->backend, rig->registry, config);
  std::vector<enactor::RunRequest> requests;
  requests.push_back(make_request("big", prefixed_chain("big", 1), 126));
  requests.push_back(make_request("small", prefixed_chain("small", 1), 12));
  auto handles = service.submit_all(std::move(requests));
  ASSERT_EQ(handles[0].wait(), RunState::kFinished);
  ASSERT_EQ(handles[1].wait(), RunState::kFinished);
  const double big = handles[0].result().makespan();
  const double small = handles[1].result().makespan();

  // Weighted round-robin splits the gate evenly while both runs have queued
  // work, so the small run finishes at ~2x its solo makespan — FIFO
  // admission would have it wait for most of the big run's 126 submissions.
  // One 10 s wave of slack: the first tenant's engine fills every slot
  // before the second tenant's submissions reach the gate.
  EXPECT_LE(small, 2.0 * solo + 10.0 + 1e-9);
  EXPECT_LT(small, 0.5 * big);
  service.wait_idle();
}

TEST(RunService, WeightTiltsAdmissionTowardHeavyTenant) {
  auto rig = std::make_unique<ServiceRig>(grid::GridConfig::constant(0.0));
  rig->add_prefixed_chain("gold", 1, 10.0);
  rig->add_prefixed_chain("econ", 1, 10.0);

  RunServiceConfig config;
  config.admission.max_active = 2;
  config.admission.max_inflight = 4;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(rig->backend, rig->registry, config);

  auto gold = make_request("gold", prefixed_chain("gold", 1), 48);
  gold.weight = 3;  // 3 grants per round-robin visit
  auto econ = make_request("econ", prefixed_chain("econ", 1), 48);
  std::vector<enactor::RunRequest> requests;
  requests.push_back(std::move(gold));
  requests.push_back(std::move(econ));
  auto handles = service.submit_all(std::move(requests));
  ASSERT_EQ(handles[0].wait(), RunState::kFinished);
  ASSERT_EQ(handles[1].wait(), RunState::kFinished);
  // Equal demand, 3:1 weights: the gold tenant clears its queue first.
  EXPECT_LT(handles[0].result().makespan(), handles[1].result().makespan());
  service.wait_idle();
}

TEST(RunService, SubmitAssignsUniqueIds) {
  ServiceRig rig(grid::GridConfig::constant(0.0));
  rig.add_prefixed_chain("dup", 1, 1.0);
  RunService service(rig.backend, rig.registry);

  const auto wf = prefixed_chain("dup", 1);
  std::vector<enactor::RunRequest> requests;
  requests.push_back(make_request("", wf, 1));     // no name: generated id
  requests.push_back(make_request("dup", wf, 1));  // name free: kept
  requests.push_back(make_request("dup", wf, 1));  // name taken: generated
  auto handles = service.submit_all(std::move(requests));

  EXPECT_FALSE(handles[0].id().empty());
  EXPECT_EQ(handles[1].id(), "dup");
  EXPECT_NE(handles[2].id(), "dup");
  EXPECT_NE(handles[0].id(), handles[2].id());
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait(), RunState::kFinished);
  }
  service.wait_idle();
}

TEST(RunService, RecorderSeparatesConcurrentRuns) {
  ServiceRig rig(grid::GridConfig::constant(2.0));
  rig.add_prefixed_chain("left", 1, 10.0);
  rig.add_prefixed_chain("right", 1, 10.0);

  obs::RunRecorder recorder;
  RunServiceConfig config;
  config.admission.max_active = 2;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(rig.backend, rig.registry, config);
  service.set_recorder(&recorder);

  std::vector<enactor::RunRequest> requests;
  requests.push_back(make_request("left", prefixed_chain("left", 1), 4));
  requests.push_back(make_request("right", prefixed_chain("right", 1), 4));
  auto handles = service.submit_all(std::move(requests));
  for (auto& handle : handles) {
    ASSERT_EQ(handle.wait(), RunState::kFinished);
  }
  service.wait_idle();

  // Every span closed despite the interleaving, and each run kept its own
  // root span.
  EXPECT_EQ(recorder.tracer().open_count(), 0u);
  std::vector<std::string> run_roots;
  for (const auto& span : recorder.tracer().spans()) {
    if (span.category == "run") run_roots.push_back(span.name);
  }
  ASSERT_EQ(run_roots.size(), 2u);
  EXPECT_NE(run_roots[0], run_roots[1]);

  // The Chrome trace gives each run its own process lane.
  const std::string trace = obs::chrome_trace_json(recorder.tracer());
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);

  // Per-run metric series exist alongside the service-wide ones.
  const std::string prom = obs::prometheus_text(recorder.metrics());
  EXPECT_NE(prom.find("moteur_run_invocations_total{run=\"left\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("moteur_run_invocations_total{run=\"right\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("moteur_service_runs_total"), std::string::npos);
}

TEST(RunService, QueuedRunCancelledBeforeStart) {
  // The front run's service blocks on a latch, pinning it in kRunning while
  // the queued run is cancelled — with admission.max_active = 1 the back run
  // deterministically never starts.
  enactor::ThreadedBackend backend(2);
  services::ServiceRegistry registry;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  registry.add(std::make_shared<FunctionalService>(
      "front-p0", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [released](const Inputs&) {
        released.wait();
        Result r;
        r.outputs["out"] = services::OutputValue{1, "x"};
        return r;
      }));
  registry.add(std::make_shared<FunctionalService>(
      "back-p0", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs&) {
        Result r;
        r.outputs["out"] = services::OutputValue{1, "x"};
        return r;
      }));

  RunServiceConfig config;
  config.admission.max_active = 1;  // the second run must queue
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);

  std::vector<enactor::RunRequest> requests;
  requests.push_back(make_request("front", prefixed_chain("front", 1), 4));
  requests.push_back(make_request("back", prefixed_chain("back", 1), 4));
  auto handles = service.submit_all(std::move(requests));

  while (handles[0].poll() == RunState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(handles[1].poll(), RunState::kQueued);
  handles[1].cancel();
  release.set_value();

  EXPECT_EQ(handles[0].wait(), RunState::kFinished);
  EXPECT_EQ(handles[1].wait(), RunState::kCancelled);
  // Never started: no partial outputs, no invocations.
  EXPECT_EQ(handles[1].result().invocations(), 0u);
  EXPECT_TRUE(handles[1].result().sink_outputs.empty());
  service.wait_idle();
}

TEST(RunService, RejectsSubmissionsAfterShutdown) {
  ServiceRig rig(grid::GridConfig::constant(0.0));
  rig.add_prefixed_chain("w", 1, 1.0);
  RunService service(rig.backend, rig.registry);
  service.shutdown();
  EXPECT_THROW(service.submit(make_request("w", prefixed_chain("w", 1), 1)),
               ExecutionError);
}

// ---------------------------------------------------------------------------
// Threaded backend: real concurrency (TSan target)
// ---------------------------------------------------------------------------

std::shared_ptr<FunctionalService> sleeping_service(const std::string& name,
                                                    std::chrono::milliseconds nap) {
  return std::make_shared<FunctionalService>(
      name, std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [nap](const Inputs&) {
        std::this_thread::sleep_for(nap);
        Result r;
        r.outputs["out"] = services::OutputValue{1, "x"};
        return r;
      });
}

TEST(RunService, ThreadedBackendInterleavesRunsAndTagsEvents) {
  enactor::ThreadedBackend backend(4);
  services::ServiceRegistry registry;
  for (const char* prefix : {"r1", "r2", "r3"}) {
    registry.add(sleeping_service(std::string(prefix) + "-p0",
                                  std::chrono::milliseconds(2)));
  }

  RunServiceConfig config;
  config.admission.max_active = 3;
  config.admission.max_inflight = 8;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);

  // Subscribers run on the worker thread; reads below happen after
  // wait_idle(), whose mutex hand-off orders them after the writes.
  std::map<std::string, int> started, finished;
  service.add_event_subscriber([&](const obs::RunEvent& event) {
    if (event.kind == obs::RunEvent::Kind::kRunStarted) ++started[event.run_id];
    if (event.kind == obs::RunEvent::Kind::kRunFinished) ++finished[event.run_id];
  });

  std::vector<enactor::RunRequest> requests;
  for (const char* prefix : {"r1", "r2", "r3"}) {
    requests.push_back(make_request(prefix, prefixed_chain(prefix, 1), 8));
  }
  auto handles = service.submit_all(std::move(requests));

  // Poll from this thread while the worker races: exercises the handle's
  // cross-thread state access under TSan.
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (auto& handle : handles) {
      if (!is_terminal(handle.poll())) all_done = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.wait_idle();

  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait(), RunState::kFinished);
    EXPECT_EQ(handle.result().sink_outputs.at("sink").size(), 8u);
    EXPECT_EQ(started[handle.id()], 1) << handle.id();
    EXPECT_EQ(finished[handle.id()], 1) << handle.id();
  }
}

TEST(RunService, CancellationMidRunDrainsToPartialResult) {
  enactor::ThreadedBackend backend(2);
  services::ServiceRegistry registry;
  registry.add(sleeping_service("victim-p0", std::chrono::milliseconds(20)));
  registry.add(sleeping_service("bystander-p0", std::chrono::milliseconds(1)));

  RunServiceConfig config;
  config.admission.max_active = 2;
  config.admission.max_inflight = 2;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  RunService service(backend, registry, config);

  std::vector<enactor::RunRequest> requests;
  requests.push_back(make_request("victim", prefixed_chain("victim", 1), 40));
  requests.push_back(make_request("bystander", prefixed_chain("bystander", 1), 10));
  auto handles = service.submit_all(std::move(requests));

  // Let the victim make some progress, then pull the plug.
  while (handles[0].poll() == RunState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  handles[0].cancel();
  handles[0].cancel();  // idempotent

  EXPECT_EQ(handles[0].wait(), RunState::kCancelled);
  EXPECT_EQ(handles[1].wait(), RunState::kFinished);
  service.wait_idle();

  // The cancelled run drained to a partial result: it did not complete all
  // 40 items, and its gated submissions failed definitively.
  const auto& partial = handles[0].result();
  EXPECT_EQ(partial.run_id, "victim");
  EXPECT_LT(partial.invocations(), 40u);
  EXPECT_GT(partial.failures(), 0u);

  // The sibling run was untouched.
  EXPECT_EQ(handles[1].result().sink_outputs.at("sink").size(), 10u);
  EXPECT_EQ(handles[1].result().failures(), 0u);
}

TEST(RunService, ShutdownCancelsEverythingAndJoins) {
  enactor::ThreadedBackend backend(2);
  services::ServiceRegistry registry;
  registry.add(sleeping_service("s-p0", std::chrono::milliseconds(10)));

  auto service = std::make_unique<RunService>(backend, registry);
  std::vector<enactor::RunRequest> requests;
  for (int i = 0; i < 3; ++i) {
    requests.push_back(make_request("", prefixed_chain("s", 1), 20));
  }
  auto handles = service->submit_all(std::move(requests));
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  service.reset();  // destructor calls shutdown()

  // Handles outlive the service and report a terminal state.
  for (auto& handle : handles) {
    EXPECT_TRUE(is_terminal(handle.poll())) << handle.id();
  }
}

}  // namespace
}  // namespace moteur::service
