#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace moteur::obs {

/// Prometheus-style label set. std::map keeps a canonical key order, so a
/// label set is usable as a series key directly.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing count.
class Counter {
 public:
  void inc(double delta = 1.0) {
    if (delta > 0.0) value_ += delta;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Instantaneous value; also tracks the maximum it ever held (high-water
/// marks like peak tuples in flight).
class Gauge {
 public:
  void set(double value);
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double max_seen() const { return max_seen_; }

 private:
  double value_ = 0.0;
  double max_seen_ = 0.0;
};

/// Fixed-bucket histogram over ascending upper bounds (an implicit +Inf
/// bucket catches the overflow). Bucket semantics follow Prometheus:
/// observation v lands in the first bucket with v <= bound. Raw samples are
/// retained so exact percentiles (util/stats) stay available alongside the
/// bucketed exposition.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (not cumulative) counts; size = bounds().size() + 1, the
  /// last entry being the +Inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }
  const std::vector<double>& samples() const { return samples_; }
  /// Exact p-th percentile over the retained samples; 0 when empty.
  double percentile(double p) const;

  /// Default bounds for grid latencies (seconds): sub-second to hours.
  static std::vector<double> latency_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::vector<double> samples_;
  double sum_ = 0.0;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* to_string(MetricType type);

/// Named metric families, each holding one instrument per label set.
/// Registration is idempotent: asking again for the same (name, labels)
/// returns the same instrument; re-registering a name under a different type
/// throws. References stay stable for the registry's lifetime. Not
/// thread-safe: record from the enactor's drive thread only.
class MetricsRegistry {
 public:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::map<Labels, Instrument> series;
  };

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help, const Labels& labels = {});
  /// `bounds` is only consulted when the series is first created.
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {});

  /// Families by name (sorted — std::map), for the exporters.
  const std::map<std::string, Family>& families() const { return families_; }
  /// Convenience lookup; nullptr when the family does not exist.
  const Family* find(const std::string& name) const;

 private:
  Family& family(const std::string& name, const std::string& help, MetricType type);

  std::map<std::string, Family> families_;
};

}  // namespace moteur::obs
