#include <gtest/gtest.h>

#include <cmath>

#include "model/makespan.hpp"
#include "model/metrics.hpp"
#include "model/probabilistic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace moteur::model {
namespace {

// ---------------------------------------------------------------------------
// Equations (1)-(4) under constant times (§3.5.4 closed forms)
// ---------------------------------------------------------------------------

class ConstantTimes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ConstantTimes, ClosedFormsHold) {
  const auto [n_w, n_d] = GetParam();
  const double t = 7.0;
  const TimeMatrix times = constant_times(n_w, n_d, t);
  const double nw = static_cast<double>(n_w), nd = static_cast<double>(n_d);

  EXPECT_DOUBLE_EQ(sigma_sequential(times), nd * nw * t);
  EXPECT_DOUBLE_EQ(sigma_dp(times), nw * t);
  EXPECT_DOUBLE_EQ(sigma_sp(times), (nd + nw - 1.0) * t);
  EXPECT_DOUBLE_EQ(sigma_dsp(times), nw * t);
}

TEST_P(ConstantTimes, SpeedupsMatchFormulas) {
  const auto [n_w, n_d] = GetParam();
  const TimeMatrix times = constant_times(n_w, n_d, 3.0);

  EXPECT_NEAR(sigma_sequential(times) / sigma_dp(times), speedup_dp(n_w, n_d), 1e-12);
  EXPECT_NEAR(sigma_sp(times) / sigma_dsp(times), speedup_dsp(n_w, n_d), 1e-12);
  EXPECT_NEAR(sigma_sequential(times) / sigma_sp(times), speedup_sp(n_w, n_d), 1e-12);
  // S_SDP = Sigma_DP / Sigma_DSP = 1: "service parallelism does not lead to
  // any speed-up if it is coupled with data parallelism" under constant T.
  EXPECT_DOUBLE_EQ(sigma_dp(times) / sigma_dsp(times), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConstantTimes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 50},
                      std::pair<std::size_t, std::size_t>{5, 1},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{5, 12},
                      std::pair<std::size_t, std::size_t>{5, 126},
                      std::pair<std::size_t, std::size_t>{10, 10}));

// ---------------------------------------------------------------------------
// Asymptotic cases of §3.5.4
// ---------------------------------------------------------------------------

TEST(Asymptotic, MassivelyDataParallel) {
  // nW = 1: Sigma_DP = Sigma_DSP = max_j, Sigma = Sigma_SP = sum_j.
  TimeMatrix times{{4.0, 9.0, 2.0, 5.0}};
  EXPECT_DOUBLE_EQ(sigma_dp(times), 9.0);
  EXPECT_DOUBLE_EQ(sigma_dsp(times), 9.0);
  EXPECT_DOUBLE_EQ(sigma_sequential(times), 20.0);
  EXPECT_DOUBLE_EQ(sigma_sp(times), 20.0);
}

TEST(Asymptotic, NonDataIntensive) {
  // nD = 1: every policy collapses to sum_i T_i0.
  TimeMatrix times{{4.0}, {9.0}, {2.0}};
  const double expected = 15.0;
  EXPECT_DOUBLE_EQ(sigma_sequential(times), expected);
  EXPECT_DOUBLE_EQ(sigma_dp(times), expected);
  EXPECT_DOUBLE_EQ(sigma_sp(times), expected);
  EXPECT_DOUBLE_EQ(sigma_dsp(times), expected);
}

// ---------------------------------------------------------------------------
// Variable times: the Figure-6 scenario
// ---------------------------------------------------------------------------

TEST(VariableTimes, ServiceParallelismGainsOnTopOfDataParallelism) {
  // Figure 6: 3 services x 3 data sets, T = 1 except T[0][0] = 2 (D0
  // submitted twice) and T[1][1] = 3 (D1 stuck in a queue).
  TimeMatrix times = constant_times(3, 3, 1.0);
  times[0][0] = 2.0;
  times[1][1] = 3.0;

  // Without service parallelism (stage barriers), each stage costs its max.
  EXPECT_DOUBLE_EQ(sigma_dp(times), 2.0 + 3.0 + 1.0);
  // With both, pipelines overlap: longest column is D1's 1+3+1 = 5.
  EXPECT_DOUBLE_EQ(sigma_dsp(times), 5.0);
  // S_SDP > 1 under variable times — the §3.5.4/§5.2 argument for SP on
  // production grids.
  EXPECT_GT(sigma_dp(times) / sigma_dsp(times), 1.0);
}

TEST(VariableTimes, SpRecurrenceAgainstBruteForce) {
  // Cross-check the m_ij recurrence against an explicit pipeline schedule:
  // start(i,j) = max(end(i-1,j), end(i,j-1)).
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n_w = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const std::size_t n_d = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    TimeMatrix times(n_w, std::vector<double>(n_d));
    for (auto& row : times) {
      for (auto& t : row) t = rng.uniform(0.5, 10.0);
    }
    TimeMatrix end(n_w, std::vector<double>(n_d, 0.0));
    for (std::size_t i = 0; i < n_w; ++i) {
      for (std::size_t j = 0; j < n_d; ++j) {
        const double above = i > 0 ? end[i - 1][j] : 0.0;
        const double left = j > 0 ? end[i][j - 1] : 0.0;
        end[i][j] = std::max(above, left) + times[i][j];
      }
    }
    EXPECT_NEAR(sigma_sp(times), end[n_w - 1][n_d - 1], 1e-9);
  }
}

TEST(Makespan, ValidationRejectsBadMatrices) {
  EXPECT_THROW(sigma_dp(TimeMatrix{}), InternalError);
  EXPECT_THROW(sigma_dp(TimeMatrix{{}}), InternalError);
  EXPECT_THROW(sigma_dp(TimeMatrix{{1.0}, {1.0, 2.0}}), InternalError);
  EXPECT_THROW(sigma_dp(TimeMatrix{{-1.0}}), InternalError);
}

// ---------------------------------------------------------------------------
// Metrics (§5.1)
// ---------------------------------------------------------------------------

TEST(Metrics, FitAndRatios) {
  // Paper Table 2 values: NOP y-intercept 20784, slope 884; DP 16328 / 143.
  Series nop{"NOP", {12, 66, 126}, {}};
  Series dp{"DP", {12, 66, 126}, {}};
  for (double n : nop.sizes) nop.times.push_back(20784.0 + 884.0 * n);
  for (double n : dp.sizes) dp.times.push_back(16328.0 + 143.0 * n);

  EXPECT_NEAR(nop.fit().intercept, 20784.0, 1e-6);
  EXPECT_NEAR(nop.fit().slope, 884.0, 1e-9);
  EXPECT_NEAR(slope_ratio(nop, dp), 884.0 / 143.0, 1e-9);     // paper: 6.18
  EXPECT_NEAR(y_intercept_ratio(nop, dp), 20784.0 / 16328.0, 1e-9);  // paper: 1.27

  const auto s = speedups(nop, dp);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_GT(s[2], s[0]);  // speed-up grows with the input size
}

TEST(Metrics, RenderFitTableContainsLabels) {
  Series a{"NOP", {1, 2, 3}, {10, 20, 30}};
  const std::string table = render_fit_table({a});
  EXPECT_NE(table.find("NOP"), std::string::npos);
  EXPECT_NE(table.find("y-intercept"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Probabilistic extension (§5.4 future work)
// ---------------------------------------------------------------------------

TEST(Probabilistic, InverseNormalCdf) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-4);
  EXPECT_THROW(inverse_normal_cdf(0.0), InternalError);
  EXPECT_THROW(inverse_normal_cdf(1.0), InternalError);
}

TEST(Probabilistic, MonteCarloMatchesConstantCase) {
  const auto sampler = [](std::size_t, std::size_t) { return 5.0; };
  const auto est = expected_sigma_dsp(4, 10, sampler, 10);
  EXPECT_DOUBLE_EQ(est.mean, 20.0);
  EXPECT_DOUBLE_EQ(est.stddev, 0.0);
}

TEST(Probabilistic, ClosedFormTracksMonteCarloForDp) {
  const double mu = std::log(600.0), sigma = 0.5;
  Rng rng(99);
  const auto sampler = [&](std::size_t, std::size_t) { return rng.lognormal(mu, sigma); };
  const auto mc = expected_sigma_dp(5, 30, sampler, 400);
  const double approx = approx_sigma_dp_lognormal(5, 30, mu, sigma);
  EXPECT_NEAR(approx / mc.mean, 1.0, 0.12);  // heuristic within ~12%
}

TEST(Probabilistic, VariabilityMakesSpWorthwhileEvenWithDp) {
  // E[Sigma_DP] > E[Sigma_DSP] under variable times; equality only at
  // sigma = 0. This quantifies §5.2's observed S_SDP in [1.9, 2.26].
  const double mu = std::log(600.0);
  for (double sigma : {0.0, 0.3, 0.6}) {
    Rng rng(7);
    const auto sampler = [&](std::size_t, std::size_t) {
      return sigma == 0.0 ? 600.0 : rng.lognormal(mu, sigma);
    };
    const auto dp = expected_sigma_dp(5, 20, sampler, 300);
    Rng rng2(7);
    const auto sampler2 = [&](std::size_t, std::size_t) {
      return sigma == 0.0 ? 600.0 : rng2.lognormal(mu, sigma);
    };
    const auto dsp = expected_sigma_dsp(5, 20, sampler2, 300);
    if (sigma == 0.0) {
      EXPECT_NEAR(dp.mean / dsp.mean, 1.0, 1e-12);
    } else {
      EXPECT_GT(dp.mean / dsp.mean, 1.05);
    }
  }
}

}  // namespace
}  // namespace moteur::model
