# Empty compiler generated dependencies file for moteur_cli.
# This may be replaced when dependencies are built.
