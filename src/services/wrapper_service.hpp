#pragma once

#include <functional>
#include <string>
#include <vector>

#include "services/descriptor.hpp"
#include "services/service.hpp"

namespace moteur::services {

/// The paper's generic code wrapper (§3.6): a single standard service
/// interface able to run *any* legacy executable from (i) its XML descriptor
/// and (ii) the runtime input values. The wrapper composes the command line
/// dynamically, stages the executable and sandboxed files, and registers
/// outputs under fresh names.
///
/// Besides simplifying application development ("the application developer
/// only needs writing the executable descriptor"), exposing the descriptor
/// to the enactor is what makes job grouping possible: the enactor can
/// concatenate the command lines of several wrapped codes into one job.
class WrapperService : public Service {
 public:
  /// Executes a composed command line; returns the process exit status and
  /// fills `captured_output`. The default (null) executor does not run
  /// anything — the service then behaves as a pure simulation service.
  using Executor =
      std::function<int(const std::vector<std::string>& argv, std::string& captured_output)>;

  /// Names the registration destination of an output file.
  using OutputNamer = std::function<std::string(
      const std::string& service_id, const OutputDescriptor& output, const Inputs& inputs)>;

  struct Options {
    double compute_seconds = 1.0;
    double megabytes_per_input_file = 0.0;
    double megabytes_per_output_file = 0.0;
    Executor executor;         // null: simulate
    OutputNamer output_namer;  // null: stable GFN from input lineage
  };

  WrapperService(std::string id, Descriptor descriptor, Options options);

  const Descriptor& descriptor() const { return descriptor_; }

  std::vector<std::string> input_ports() const override;
  std::vector<std::string> output_ports() const override;

  /// Compose the full command line for the given inputs: input values come
  /// from the tokens' repr, output destinations from the output namer.
  std::vector<std::string> compose_command_line(const Inputs& inputs) const;

  Result invoke(const Inputs& inputs) override;
  grid::JobRequest job_profile(const Inputs& inputs) const override;

  /// Folds the full XML descriptor into the digest, so editing a descriptor
  /// invalidates any memoized invocations of the wrapped code.
  std::uint64_t content_digest() const override;

  /// Command lines of every invocation run so far (testing/inspection).
  const std::vector<std::vector<std::string>>& invocation_log() const {
    return invocation_log_;
  }

 private:
  std::map<std::string, std::string> bind_values(const Inputs& inputs) const;

  Descriptor descriptor_;
  Options options_;
  std::vector<std::vector<std::string>> invocation_log_;
};

}  // namespace moteur::services
