# Empty dependencies file for test_catalog_manifest.
# This may be replaced when dependencies are built.
