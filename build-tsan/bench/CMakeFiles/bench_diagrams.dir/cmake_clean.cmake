file(REMOVE_RECURSE
  "CMakeFiles/bench_diagrams.dir/bench_diagrams.cpp.o"
  "CMakeFiles/bench_diagrams.dir/bench_diagrams.cpp.o.d"
  "bench_diagrams"
  "bench_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
