#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace moteur::obs {

void Gauge::set(double value) {
  value_ = value;
  max_seen_ = std::max(max_seen_, value);
}

Histogram::Histogram(std::vector<double> bounds, std::size_t sample_cap)
    : bounds_(std::move(bounds)), sample_cap_(sample_cap) {
  MOTEUR_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()), Error,
                 "histogram bounds must be ascending");
  MOTEUR_REQUIRE(sample_cap_ > 0, Error, "histogram sample cap must be positive");
  buckets_.assign(bounds_.size() + 1, 0);
}

namespace {
std::uint64_t xorshift64(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}
}  // namespace

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += value;
  ++count_;
  max_seen_ = count_ == 1 ? value : std::max(max_seen_, value);
  if (samples_.size() < sample_cap_) {
    samples_.push_back(value);
  } else {
    // Algorithm R: the new observation replaces a retained one with
    // probability cap/count, keeping the reservoir a uniform sample.
    const std::uint64_t slot = xorshift64(rng_state_) % count_;
    if (slot < sample_cap_) samples_[static_cast<std::size_t>(slot)] = value;
  }
}

double Histogram::percentile(double p) const {
  return samples_.empty() ? 0.0 : moteur::percentile(samples_, p);
}

std::vector<double> Histogram::latency_bounds() {
  return {0.5, 1, 2, 5, 15, 60, 120, 300, 600, 1200, 1800, 3600, 7200};
}

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                const std::string& help, MetricType type) {
  const auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.type = type;
  } else {
    MOTEUR_REQUIRE(it->second.type == type, Error,
                   "metric '" + name + "' already registered as " +
                       to_string(it->second.type) + ", requested as " + to_string(type));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
  Instrument& slot = family(name, help, MetricType::kCounter).series[labels];
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  Instrument& slot = family(name, help, MetricType::kGauge).series[labels];
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      std::vector<double> bounds, const Labels& labels) {
  Instrument& slot = family(name, help, MetricType::kHistogram).series[labels];
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *slot.histogram;
}

const MetricsRegistry::Family* MetricsRegistry::find(const std::string& name) const {
  const auto it = families_.find(name);
  return it == families_.end() ? nullptr : &it->second;
}

}  // namespace moteur::obs
