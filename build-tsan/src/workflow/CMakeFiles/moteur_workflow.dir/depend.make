# Empty dependencies file for moteur_workflow.
# This may be replaced when dependencies are built.
