file(REMOVE_RECURSE
  "CMakeFiles/moteur_model.dir/dag.cpp.o"
  "CMakeFiles/moteur_model.dir/dag.cpp.o.d"
  "CMakeFiles/moteur_model.dir/makespan.cpp.o"
  "CMakeFiles/moteur_model.dir/makespan.cpp.o.d"
  "CMakeFiles/moteur_model.dir/metrics.cpp.o"
  "CMakeFiles/moteur_model.dir/metrics.cpp.o.d"
  "CMakeFiles/moteur_model.dir/probabilistic.cpp.o"
  "CMakeFiles/moteur_model.dir/probabilistic.cpp.o.d"
  "libmoteur_model.a"
  "libmoteur_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moteur_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
