#include "services/descriptor.hpp"

#include <memory>

#include "util/error.hpp"
#include "xml/xml.hpp"

namespace moteur::services {

const char* to_string(AccessType t) {
  switch (t) {
    case AccessType::kUrl: return "URL";
    case AccessType::kGfn: return "GFN";
    case AccessType::kLocal: return "local";
  }
  return "?";
}

AccessType access_type_from_string(const std::string& s) {
  if (s == "URL" || s == "url") return AccessType::kUrl;
  if (s == "GFN" || s == "gfn") return AccessType::kGfn;
  if (s == "local" || s == "LOCAL") return AccessType::kLocal;
  throw ParseError("unknown access type '" + s + "'");
}

std::string Access::resolve(const std::string& value) const {
  if (path.empty()) return value;
  if (!path.empty() && path.back() == '/') return path + value;
  return path + "/" + value;
}

const InputDescriptor* Descriptor::input(const std::string& name) const {
  for (const auto& in : inputs) {
    if (in.name == name) return &in;
  }
  return nullptr;
}

const OutputDescriptor* Descriptor::output(const std::string& name) const {
  for (const auto& out : outputs) {
    if (out.name == name) return &out;
  }
  return nullptr;
}

std::vector<std::string> Descriptor::input_names() const {
  std::vector<std::string> names;
  names.reserve(inputs.size());
  for (const auto& in : inputs) names.push_back(in.name);
  return names;
}

std::vector<std::string> Descriptor::output_names() const {
  std::vector<std::string> names;
  names.reserve(outputs.size());
  for (const auto& out : outputs) names.push_back(out.name);
  return names;
}

std::vector<std::string> Descriptor::compose_command_line(
    const std::map<std::string, std::string>& values) const {
  std::vector<std::string> argv;
  argv.push_back(executable_name);
  for (const auto& in : inputs) {
    const auto it = values.find(in.name);
    MOTEUR_REQUIRE(it != values.end(), EnactmentError,
                   "no value supplied for input '" + in.name + "' of '" +
                       executable_name + "'");
    if (!in.option.empty()) argv.push_back(in.option);
    argv.push_back(it->second);
  }
  for (const auto& out : outputs) {
    const auto it = values.find(out.name);
    MOTEUR_REQUIRE(it != values.end(), EnactmentError,
                   "no destination supplied for output '" + out.name + "' of '" +
                       executable_name + "'");
    if (!out.option.empty()) argv.push_back(out.option);
    argv.push_back(it->second);
  }
  return argv;
}

std::vector<std::string> Descriptor::staging_list() const {
  std::vector<std::string> files;
  files.push_back(executable_access.resolve(executable_value.empty() ? executable_name
                                                                     : executable_value));
  for (const auto& s : sandbox) {
    files.push_back(s.access.resolve(s.value.empty() ? s.name : s.value));
  }
  return files;
}

namespace {

void write_access(xml::Node& parent, const Access& access) {
  auto& node = parent.add_child("access");
  node.set_attribute("type", to_string(access.type));
  if (!access.path.empty()) {
    node.add_child("path").set_attribute("value", access.path);
  }
}

Access read_access(const xml::Node& node) {
  Access access;
  access.type = access_type_from_string(node.required_attribute("type"));
  if (const xml::Node* path = node.child("path")) {
    access.path = path->required_attribute("value");
  }
  return access;
}

}  // namespace

std::string Descriptor::to_xml() const {
  auto root = std::make_unique<xml::Node>("description");
  auto& exe = root->add_child("executable");
  exe.set_attribute("name", executable_name);
  write_access(exe, executable_access);
  if (!executable_value.empty()) {
    exe.add_child("value").set_attribute("value", executable_value);
  }
  for (const auto& in : inputs) {
    auto& node = exe.add_child("input");
    node.set_attribute("name", in.name);
    if (!in.option.empty()) node.set_attribute("option", in.option);
    if (in.access) write_access(node, *in.access);
  }
  for (const auto& out : outputs) {
    auto& node = exe.add_child("output");
    node.set_attribute("name", out.name);
    if (!out.option.empty()) node.set_attribute("option", out.option);
    write_access(node, out.access);
  }
  for (const auto& s : sandbox) {
    auto& node = exe.add_child("sandbox");
    node.set_attribute("name", s.name);
    write_access(node, s.access);
    if (!s.value.empty()) node.add_child("value").set_attribute("value", s.value);
  }
  return xml::Document(std::move(root)).to_string();
}

Descriptor Descriptor::from_xml(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  MOTEUR_REQUIRE(doc.root().name() == "description", ParseError,
                 "expected <description> root, got <" + doc.root().name() + ">");
  const xml::Node& exe = doc.root().required_child("executable");

  Descriptor d;
  d.executable_name = exe.required_attribute("name");
  d.executable_access = read_access(exe.required_child("access"));
  if (const xml::Node* value = exe.child("value")) {
    d.executable_value = value->required_attribute("value");
  }
  for (const xml::Node* node : exe.children_named("input")) {
    InputDescriptor in;
    in.name = node->required_attribute("name");
    in.option = node->attribute("option").value_or("");
    if (const xml::Node* access = node->child("access")) {
      in.access = read_access(*access);
    }
    d.inputs.push_back(std::move(in));
  }
  for (const xml::Node* node : exe.children_named("output")) {
    OutputDescriptor out;
    out.name = node->required_attribute("name");
    out.option = node->attribute("option").value_or("");
    out.access = read_access(node->required_child("access"));
    d.outputs.push_back(std::move(out));
  }
  for (const xml::Node* node : exe.children_named("sandbox")) {
    SandboxDescriptor s;
    s.name = node->required_attribute("name");
    s.access = read_access(node->required_child("access"));
    if (const xml::Node* value = node->child("value")) {
      s.value = value->required_attribute("value");
    }
    d.sandbox.push_back(std::move(s));
  }
  return d;
}

}  // namespace moteur::services
