#pragma once

#include <map>
#include <memory>
#include <string>

#include "services/service.hpp"
#include "workflow/graph.hpp"

namespace moteur::services {

/// Name-to-implementation directory the enactor uses to bind workflow
/// processors to services. Grouped processors (from the §3.6 rewrite)
/// resolve to dynamically-built GroupedService instances, cached per
/// processor name.
class ServiceRegistry {
 public:
  /// Register under the service's own id; replaces an existing binding.
  void add(std::shared_ptr<Service> service);

  bool has(const std::string& id) const;

  /// Lookup by id; throws EnactmentError if unknown.
  std::shared_ptr<Service> get(const std::string& id) const;

  /// Implementation bound to a processor:
  ///  - plain processor: its service_id, defaulting to the processor name;
  ///  - grouped processor: a GroupedService composed from the members'
  ///    bindings and the internal links (built once, then cached).
  std::shared_ptr<Service> resolve(const workflow::Processor& processor);

  std::size_t size() const { return services_.size(); }

 private:
  std::map<std::string, std::shared_ptr<Service>> services_;
  std::map<std::string, std::shared_ptr<Service>> grouped_cache_;
};

}  // namespace moteur::services
