#pragma once

#include <string>

#include "enactor/timeline.hpp"

namespace moteur::enactor {

/// CSV export of a run's timeline for external plotting tools (one row per
/// invocation): processor, data label, submit/start/end times, span,
/// overhead, computing element, failed flag. Fields containing commas or
/// quotes are quoted per RFC 4180.
std::string timeline_to_csv(const Timeline& timeline);

}  // namespace moteur::enactor
