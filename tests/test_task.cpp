#include <gtest/gtest.h>

#include "app/bronze_standard.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "task/dagman.hpp"
#include "task/expansion.hpp"
#include "task/task_graph.hpp"
#include "util/error.hpp"

namespace moteur::task {
namespace {

TEST(TaskGraph, BuildAndValidate) {
  TaskGraph graph;
  graph.add_task({"a", {"a", 10.0, 0, 0}, {}});
  graph.add_task({"b", {"b", 10.0, 0, 0}, {"a"}});
  graph.add_task({"c", {"c", 10.0, 0, 0}, {"a"}});
  graph.add_task({"d", {"d", 10.0, 0, 0}, {"b", "c"}});
  EXPECT_NO_THROW(graph.validate());
  EXPECT_EQ(graph.size(), 4u);
  EXPECT_EQ(graph.children("a").size(), 2u);
  const auto order = graph.topological_order();
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");
}

TEST(TaskGraph, RejectsDuplicatesUnknownDepsAndCycles) {
  TaskGraph graph;
  graph.add_task({"a", {}, {}});
  EXPECT_THROW(graph.add_task({"a", {}, {}}), GraphError);
  graph.add_task({"b", {}, {"ghost"}});
  EXPECT_THROW(graph.validate(), GraphError);

  TaskGraph cyclic;
  cyclic.add_task({"x", {}, {"y"}});
  cyclic.add_task({"y", {}, {"x"}});
  EXPECT_THROW(cyclic.validate(), GraphError);
}

// ---------------------------------------------------------------------------
// Static expansion of service workflows (§2.2)
// ---------------------------------------------------------------------------

workflow::Workflow dot_chain() {
  workflow::Workflow wf("w");
  wf.add_source("src");
  wf.add_processor("A", {"in"}, {"out"});
  wf.add_processor("B", {"in"}, {"out"});
  wf.add_sink("k");
  wf.link("src", "out", "A", "in");
  wf.link("A", "out", "B", "in");
  wf.link("B", "out", "k", "in");
  return wf;
}

data::InputDataSet items(const std::string& name, std::size_t n) {
  data::InputDataSet ds;
  for (std::size_t j = 0; j < n; ++j) ds.add_item(name, "i" + std::to_string(j));
  return ds;
}

void register_unit_services(services::ServiceRegistry& registry,
                            std::initializer_list<const char*> names) {
  for (const char* name : names) {
    registry.add(services::make_simulated_service(name, {"in"}, {"out"},
                                                  services::JobProfile{10.0}));
  }
}

TEST(Expansion, ReplicatesGraphPerInputData) {
  services::ServiceRegistry registry;
  register_unit_services(registry, {"A", "B"});
  const TaskGraph graph = expand(dot_chain(), items("src", 5), registry);
  EXPECT_EQ(graph.size(), 10u);  // 2 services x 5 data
  EXPECT_TRUE(graph.has_task("A(3)"));
  EXPECT_TRUE(graph.has_task("B(3)"));
  EXPECT_EQ(graph.task("B(3)").dependencies, (std::vector<std::string>{"A(3)"}));
}

TEST(Expansion, CrossProductMultipliesTasks) {
  workflow::Workflow wf("cross");
  wf.add_source("a");
  wf.add_source("b");
  wf.add_processor("X", {"p", "q"}, {"out"}, workflow::IterationStrategy::kCross);
  wf.add_sink("k");
  wf.link("a", "out", "X", "p");
  wf.link("b", "out", "X", "q");
  wf.link("X", "out", "k", "in");

  services::ServiceRegistry registry;
  registry.add(services::make_simulated_service("X", {"p", "q"}, {"out"},
                                                services::JobProfile{10.0}));
  data::InputDataSet ds;
  for (std::size_t j = 0; j < 4; ++j) ds.add_item("a", "a" + std::to_string(j));
  for (std::size_t j = 0; j < 6; ++j) ds.add_item("b", "b" + std::to_string(j));

  const TaskGraph graph = expand(wf, ds, registry);
  EXPECT_EQ(graph.size(), 24u);  // 4 x 6 combinations
  EXPECT_EQ(expansion_size(wf, ds), 24u);
}

TEST(Expansion, ChainedCrossProductsExplodeCombinatorially) {
  // "chaining cross products just makes the application workflow
  // representation intractable even for a limited number (tens) of input
  // data" (§2.2): three chained cross stages over 30-item sources.
  workflow::Workflow wf("explode");
  wf.add_source("s0");
  wf.add_source("s1");
  wf.add_source("s2");
  wf.add_source("s3");
  wf.add_processor("X1", {"p", "q"}, {"out"}, workflow::IterationStrategy::kCross);
  wf.add_processor("X2", {"p", "q"}, {"out"}, workflow::IterationStrategy::kCross);
  wf.add_processor("X3", {"p", "q"}, {"out"}, workflow::IterationStrategy::kCross);
  wf.add_sink("k");
  wf.link("s0", "out", "X1", "p");
  wf.link("s1", "out", "X1", "q");
  wf.link("X1", "out", "X2", "p");
  wf.link("s2", "out", "X2", "q");
  wf.link("X2", "out", "X3", "p");
  wf.link("s3", "out", "X3", "q");
  wf.link("X3", "out", "k", "in");

  data::InputDataSet ds;
  for (const char* s : {"s0", "s1", "s2", "s3"}) {
    for (std::size_t j = 0; j < 30; ++j) ds.add_item(s, std::to_string(j));
  }
  // 900 + 27000 + 810000 static tasks from thirty input items.
  EXPECT_EQ(expansion_size(wf, ds), 900u + 27000u + 810000u);
}

TEST(Expansion, SynchronizationBecomesSingleGatedTask) {
  workflow::Workflow wf = dot_chain();
  wf.processor("B").synchronization = true;
  services::ServiceRegistry registry;
  register_unit_services(registry, {"A", "B"});
  const TaskGraph graph = expand(wf, items("src", 4), registry);
  EXPECT_EQ(graph.size(), 5u);  // 4 A tasks + 1 barrier task
  EXPECT_EQ(graph.task("B()").dependencies.size(), 4u);
}

TEST(Expansion, RefusesLoops) {
  // "Composing such optimization loop would not be possible" (§2.1).
  workflow::Workflow wf("loop");
  wf.add_source("s");
  wf.add_processor("P", {"in"}, {"out", "back"});
  wf.add_sink("k");
  wf.link("s", "out", "P", "in");
  wf.link("P", "back", "P", "in", /*feedback=*/true);
  wf.link("P", "out", "k", "in");

  services::ServiceRegistry registry;
  registry.add(services::make_simulated_service("P", {"in"}, {"out", "back"},
                                                services::JobProfile{1.0}));
  EXPECT_THROW(expand(wf, items("s", 1), registry), GraphError);
  EXPECT_THROW(expansion_size(wf, items("s", 1)), GraphError);
}

TEST(Expansion, BronzeStandardTaskCountsMatchPaper) {
  services::ServiceRegistry registry;
  app::register_simulated_services(registry);
  for (const std::size_t n : {12u, 66u, 126u}) {
    const auto ds = app::bronze_standard_dataset(n);
    const auto wf = app::bronze_standard_workflow();
    EXPECT_EQ(expansion_size(wf, ds), 6 * n + 1);  // paper: 72/396/756 jobs
  }
}

// ---------------------------------------------------------------------------
// DAGMan executor
// ---------------------------------------------------------------------------

TEST(Dagman, RunsWholeDagRespectingDependencies) {
  sim::Simulator sim;
  grid::Grid grid(sim, grid::GridConfig::constant(5.0));
  services::ServiceRegistry registry;
  register_unit_services(registry, {"A", "B"});
  const TaskGraph graph = expand(dot_chain(), items("src", 3), registry);

  const DagRunResult result = run_dag(graph, grid);
  EXPECT_EQ(result.tasks_done, 6u);
  EXPECT_EQ(result.tasks_failed, 0u);
  for (std::size_t j = 0; j < 3; ++j) {
    const std::string a = "A(" + std::to_string(j) + ")";
    const std::string b = "B(" + std::to_string(j) + ")";
    EXPECT_LT(result.completion_times.at(a), result.completion_times.at(b));
  }
  // Full parallelism across data: makespan = 2 stages x (5 + 10).
  EXPECT_DOUBLE_EQ(result.makespan, 30.0);
}

TEST(Dagman, EquivalentToServiceDspOnSimpleFlows) {
  // On a loop-free dot workflow the task-based run equals the service-based
  // run under DP+SP: both expose exactly the same parallelism (§3.3-3.4).
  sim::Simulator sim;
  grid::Grid grid(sim, grid::GridConfig::constant(100.0));
  services::ServiceRegistry registry;
  register_unit_services(registry, {"A", "B"});
  const DagRunResult dag = run_dag(expand(dot_chain(), items("src", 8), registry), grid);
  // Service run: nW = 2, nD = 8, T = 110 -> Sigma_DSP = 220.
  EXPECT_DOUBLE_EQ(dag.makespan, 220.0);
}

TEST(Dagman, SkipsDescendantsOfFailedTasks) {
  sim::Simulator sim;
  auto config = grid::GridConfig::egee2006(1);
  config.failure_probability = 1.0;
  config.max_attempts = 1;
  config.background_jobs_per_hour = 0.0;
  grid::Grid grid(sim, config);

  TaskGraph graph;
  graph.add_task({"root", {"root", 10.0, 0, 0}, {}});
  graph.add_task({"child", {"child", 10.0, 0, 0}, {"root"}});
  const DagRunResult result = run_dag(graph, grid);
  EXPECT_EQ(result.tasks_done, 0u);
  EXPECT_EQ(result.tasks_failed, 1u);  // child never submitted
}

}  // namespace
}  // namespace moteur::task
