#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace moteur::policy {

/// Process-wide catalogue of named policy factories, one namespace per
/// decision kind. Built-ins self-register on first access; callers resolve
/// names coming from flags, manifests, or configs through the `check_*`
/// validators (which throw ParseError listing the known names) and
/// construct instances through the `make_*` factories. Construction is
/// cheap — decision sites cache instances per name.
class PolicyRegistry {
 public:
  /// Matchmaking factories receive an RNG base so randomized policies
  /// (e.g. k-choices) can fork a private deterministic substream.
  using MatchmakingFactory =
      std::function<std::unique_ptr<MatchmakingPolicy>(const Rng& base)>;
  using PlacementFactory = std::function<std::unique_ptr<PlacementPolicy>()>;
  using ReplicaFactory = std::function<std::unique_ptr<ReplicaPolicy>()>;
  using AdmissionFactory = std::function<std::unique_ptr<AdmissionPolicy>()>;
  using ReplicationFactory = std::function<std::unique_ptr<ReplicationPolicy>()>;
  using EvictionFactory = std::function<std::unique_ptr<EvictionPolicy>()>;

  static PolicyRegistry& instance();

  void register_matchmaking(const std::string& name, MatchmakingFactory factory);
  void register_placement(const std::string& name, PlacementFactory factory);
  void register_replica(const std::string& name, ReplicaFactory factory);
  void register_admission(const std::string& name, AdmissionFactory factory);
  void register_replication(const std::string& name, ReplicationFactory factory);
  void register_eviction(const std::string& name, EvictionFactory factory);

  std::unique_ptr<MatchmakingPolicy> make_matchmaking(const std::string& name,
                                                      const Rng& base) const;
  std::unique_ptr<PlacementPolicy> make_placement(const std::string& name) const;
  std::unique_ptr<ReplicaPolicy> make_replica(const std::string& name) const;
  std::unique_ptr<AdmissionPolicy> make_admission(const std::string& name) const;
  std::unique_ptr<ReplicationPolicy> make_replication(const std::string& name) const;
  std::unique_ptr<EvictionPolicy> make_eviction(const std::string& name) const;

  /// Validate a policy name from a flag or manifest attribute; returns the
  /// name unchanged or throws ParseError naming the known policies. `flag`
  /// labels the error ("--matchmaking", "policy matchmaking attribute", ...).
  const std::string& check_matchmaking(const std::string& name,
                                       const std::string& flag) const;
  const std::string& check_placement(const std::string& name,
                                     const std::string& flag) const;
  const std::string& check_replica(const std::string& name,
                                   const std::string& flag) const;
  const std::string& check_admission(const std::string& name,
                                     const std::string& flag) const;
  const std::string& check_replication(const std::string& name,
                                       const std::string& flag) const;
  const std::string& check_eviction(const std::string& name,
                                    const std::string& flag) const;

  /// Whether the named replication policy routes remote reads SE→SE (so
  /// callers know to bring up the data plane before enactment).
  bool replication_is_decentralized(const std::string& name) const;

  /// Whether the named matchmaking policy ranks on stage-in estimates (so
  /// callers know to bring up the data plane before enactment).
  bool matchmaking_wants_stage_in(const std::string& name) const;

  std::vector<std::string> matchmaking_names() const;
  std::vector<std::string> placement_names() const;
  std::vector<std::string> replica_names() const;
  std::vector<std::string> admission_names() const;
  std::vector<std::string> replication_names() const;
  std::vector<std::string> eviction_names() const;

 private:
  PolicyRegistry();

  std::map<std::string, MatchmakingFactory> matchmaking_;
  std::map<std::string, PlacementFactory> placement_;
  std::map<std::string, ReplicaFactory> replica_;
  std::map<std::string, AdmissionFactory> admission_;
  std::map<std::string, ReplicationFactory> replication_;
  std::map<std::string, EvictionFactory> eviction_;
};

/// Built-in policy names (defaults preserve pre-policy-engine behavior).
inline constexpr const char* kDefaultMatchmaking = "queue-rank";
inline constexpr const char* kDefaultPlacement = "rematch";
inline constexpr const char* kDefaultReplica = "close-se";
inline constexpr const char* kDefaultAdmission = "weighted";
inline constexpr const char* kDefaultReplication = "none";
inline constexpr const char* kDefaultEviction = "lru";

}  // namespace moteur::policy
