#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/dataref.hpp"

namespace moteur::data {

/// One output of a memoized invocation. Mirrors services::OutputValue but
/// lives in the data layer so the cache has no dependency on services/.
struct CachedOutput {
  std::string port;
  std::any payload;
  std::string repr;
  std::uint64_t digest = 0;           // content digest of the value
  std::shared_ptr<const DataRef> ref;  // produced replica, when staged
};

/// The complete, successful result of one invocation.
struct CachedInvocation {
  std::vector<CachedOutput> outputs;
};

/// Content-addressed memoization of service invocations. The key is derived
/// from the service's content digest (id + descriptor hash) and the bound
/// inputs' (port, content digest) pairs — see cache_key(). A hit lets the
/// engine short-circuit the grid job entirely.
///
/// Only complete successful results are ever inserted (the engine inserts on
/// kOk outcomes only), so a cancelled or failed run cannot leave half-written
/// entries. Poisoned tokens and non-deterministic services are excluded by
/// the engine before lookup/insert. Thread-safe: one instance is shared
/// across tenants through the RunService.
class InvocationCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t invalidations = 0;
  };

  /// Canonical key: service content digest + the bound inputs' (port,
  /// content digest) pairs, sorted by port name. Independent of how the
  /// caller iterates the binding, but sensitive to which port carries which
  /// value — a non-commutative service invoked with inputs swapped across
  /// ports must never be served the other invocation's result.
  static std::string cache_key(std::uint64_t service_digest,
                               std::vector<PortDigest> inputs);

  /// Look up a memoized result; counts a hit against `run_id` when found.
  /// A failed lookup counts nothing — callers may probe the same work
  /// repeatedly (e.g. tuples parked behind a capacity limit re-probed each
  /// dispatch pass); the caller reports the one authoritative miss through
  /// note_miss() when the work actually executes.
  std::optional<CachedInvocation> lookup(const std::string& key, const std::string& run_id);

  /// The memoized entry for `key` without counting anything — for validation
  /// probes (the engine confirms a hit's output replicas still resolve in the
  /// catalog before counting and serving the hit).
  std::optional<CachedInvocation> peek(const std::string& key) const;

  /// Count one miss against `run_id`: the probed work was not memoized and
  /// is now actually executing.
  void note_miss(const std::string& run_id);

  /// Memoize a complete successful result (first writer wins; counts an
  /// insertion against `run_id` only when the entry is new).
  void insert(const std::string& key, CachedInvocation value, const std::string& run_id);

  /// Drop a memoized entry whose outputs no longer resolve — its replicas
  /// were lost or evicted from the catalog, so replaying it would hand out
  /// dangling references. Counts an invalidation against `run_id` when an
  /// entry was actually removed; returns whether one was.
  bool invalidate(const std::string& key, const std::string& run_id);

  std::size_t entry_count() const;

  /// Per-run hit/miss/insertion counters ("" aggregates anonymous runs).
  Stats stats(const std::string& run_id) const;
  Stats totals() const;
  std::vector<std::string> run_ids() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, CachedInvocation> entries_;
  std::map<std::string, Stats> run_stats_;
  Stats totals_;
};

}  // namespace moteur::data
