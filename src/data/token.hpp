#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "data/dataref.hpp"
#include "data/provenance.hpp"

namespace moteur::data {

/// Composite iteration index of a data token: source items carry {rank};
/// a dot product preserves the common index; a cross product concatenates
/// the operand indices. Equal index vectors identify "the k-th result" no
/// matter the completion order — the mechanism that keeps dot products
/// causally correct under data/service parallelism (paper §4.1).
using IndexVector = std::vector<std::size_t>;

std::string to_string(const IndexVector& v);

/// Root cause carried by a poisoned (error) token: which processor lost the
/// data, why, and with what final outcome status. Shared unchanged by every
/// downstream poisoned token derived from it, so the original failure stays
/// identifiable arbitrarily deep in the graph.
struct TokenError {
  std::string processor;  // processor whose invocation failed definitively
  std::string cause;      // backend error text of the root failure
  std::string status;     // outcome status name ("Transient", "TimedOut", ...)
};

/// One piece of data flowing through the workflow. Tokens are cheap to copy:
/// payloads are shared, provenance trees are shared.
///
/// A *poisoned* token stands in for data that was never produced because an
/// upstream invocation failed definitively: it has no payload but carries a
/// TokenError with the root cause. Poisoned tokens flow through iteration
/// strategies and the history tree exactly like real data — equal index
/// vectors, full provenance — so downstream consumers can be skipped (and
/// accounted for) instead of waiting forever on data that will never come.
class Token {
 public:
  Token() = default;
  Token(std::any payload, std::string repr, IndexVector indices, Provenance::Ptr provenance);

  /// Token for the `index`-th item emitted by workflow source `source_name`.
  /// The content digest defaults to FNV-1a over `repr`, so source items with
  /// equal values share a digest (the property replica reuse and invocation
  /// caching build on).
  static Token from_source(const std::string& source_name, std::size_t index,
                           std::any payload, std::string repr);

  /// Token produced on `port` of `processor` from the given input tokens.
  /// `digest` is the content digest of the produced value (0 = unknown, the
  /// pre-data-plane behavior); `ref` optionally names the replica written to
  /// a StorageElement for this value.
  static Token derived(const std::string& processor, const std::string& port,
                       const std::vector<Token>& inputs, IndexVector indices,
                       std::any payload, std::string repr, std::uint64_t digest = 0,
                       std::shared_ptr<const DataRef> ref = nullptr);

  /// Poisoned token standing in for the output `port` of `processor` that
  /// was never produced. Provenance derives from `inputs` like a real
  /// output; `error` is shared unchanged so the root cause propagates.
  static Token poisoned(const std::string& processor, const std::string& port,
                        const std::vector<Token>& inputs, IndexVector indices,
                        std::shared_ptr<const TokenError> error);

  const std::any& payload() const { return payload_; }
  /// Typed access; throws std::bad_any_cast on mismatch.
  template <typename T>
  const T& as() const {
    return *std::any_cast<T>(&require_payload());
  }
  template <typename T>
  bool holds() const {
    return std::any_cast<T>(&payload_) != nullptr;
  }

  /// Short human-readable rendition (file name, value, ...).
  const std::string& repr() const { return repr_; }

  const IndexVector& indices() const { return indices_; }
  const Provenance::Ptr& provenance() const { return provenance_; }

  /// Unique identity (the provenance key).
  const std::string& id() const;

  bool has_payload() const { return payload_.has_value(); }

  /// Content digest of the carried value (0 = unknown; poisoned tokens have
  /// no content). Equal digests mean equal content, not equal provenance.
  std::uint64_t digest() const { return digest_; }

  /// The logical grid file backing this token, when one exists; nullptr for
  /// in-memory values that were never staged to a StorageElement.
  const std::shared_ptr<const DataRef>& ref() const { return ref_; }

  /// Whether this token is an error marker rather than data.
  bool poisoned() const { return error_ != nullptr; }
  /// Root cause of a poisoned token; nullptr for healthy tokens.
  const std::shared_ptr<const TokenError>& error() const { return error_; }

 private:
  const std::any& require_payload() const;

  std::any payload_;
  std::string repr_;
  IndexVector indices_;
  Provenance::Ptr provenance_;
  std::shared_ptr<const TokenError> error_;
  std::uint64_t digest_ = 0;
  std::shared_ptr<const DataRef> ref_;
};

}  // namespace moteur::data
