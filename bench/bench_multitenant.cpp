// E17 (multi-tenant extension) — concurrent workflow runs over one shared
// grid through the RunService, against the back-to-back baseline. Four
// Bronze Standard tenants (two 126-pair "big" runs, two 12-pair "small"
// runs) are submitted together; the service interleaves their submissions
// with weighted-round-robin admission, so the grid's latency tail is
// overlapped across tenants instead of paid serially, and a small run is
// not starved behind a big one.
//
// Reported per scenario: each tenant's turnaround (submission at t=0 to its
// last settled result), the total makespan, and the p95 turnaround. The
// multi-tenant run must beat back-to-back on both totals, and the small
// tenants must stay within 2x of their solo makespan.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "app/bronze_standard.hpp"
#include "enactor/enactor.hpp"
#include "enactor/run_request.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "service/run_service.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace moteur;

constexpr std::uint64_t kSeed = 20060619;
constexpr std::size_t kBigPairs = 126;
constexpr std::size_t kSmallPairs = 12;

struct Rig {
  sim::Simulator simulator;
  grid::Grid grid;
  enactor::SimGridBackend backend;
  services::ServiceRegistry registry;

  Rig() : grid(simulator, grid::GridConfig::egee2006(kSeed)), backend(grid) {
    app::register_simulated_services(registry);
  }
};

// The four tenants, in submission order.
const std::vector<std::size_t>& tenant_pairs() {
  static const std::vector<std::size_t> pairs{kBigPairs, kSmallPairs, kBigPairs,
                                              kSmallPairs};
  return pairs;
}

double solo_makespan(std::size_t n_pairs) {
  Rig rig;
  enactor::Enactor moteur(rig.backend, rig.registry, enactor::EnactmentPolicy::sp_dp());
  return moteur
      .run({.workflow = app::bronze_standard_workflow(),
            .inputs = app::bronze_standard_dataset(n_pairs)})
      .makespan();
}

// Back to back on one shared grid: tenant k's turnaround is the cumulative
// completion time, exactly what a FIFO queue in front of the enactor costs.
std::vector<double> back_to_back_turnarounds() {
  Rig rig;
  enactor::Enactor moteur(rig.backend, rig.registry, enactor::EnactmentPolicy::sp_dp());
  std::vector<double> turnarounds;
  double elapsed = 0.0;
  for (const std::size_t pairs : tenant_pairs()) {
    const auto result = moteur.run({.workflow = app::bronze_standard_workflow(),
                                    .inputs = app::bronze_standard_dataset(pairs)});
    elapsed += result.makespan();
    turnarounds.push_back(elapsed);
  }
  return turnarounds;
}

std::vector<double> multitenant_turnarounds() {
  Rig rig;
  service::RunServiceConfig config;
  config.admission.max_active = 4;
  config.admission.max_inflight = 64;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  service::RunService runs(rig.backend, rig.registry, config);

  std::vector<enactor::RunRequest> requests;
  for (std::size_t i = 0; i < tenant_pairs().size(); ++i) {
    enactor::RunRequest request;
    request.name = "tenant-" + std::to_string(i + 1);
    request.workflow = app::bronze_standard_workflow();
    request.inputs = app::bronze_standard_dataset(tenant_pairs()[i]);
    // Interactive tenants buy responsiveness: more admission grants per
    // round-robin visit (RunRequest::weight).
    if (tenant_pairs()[i] == kSmallPairs) request.weight = 4;
    requests.push_back(std::move(request));
  }
  auto handles = runs.submit_all(std::move(requests));
  // Harvest in completion order — wait_any() blocks until any tenant turns
  // terminal — but keep turnarounds indexed by submission position (the
  // starvation check below addresses the small tenants by slot). All tenants
  // are submitted at backend t=0, so the finish stamp is the turnaround.
  std::vector<double> turnarounds(handles.size(), 0.0);
  std::vector<service::RunHandle> pending(handles.begin(), handles.end());
  std::vector<std::size_t> slot(handles.size());
  for (std::size_t i = 0; i < slot.size(); ++i) slot[i] = i;
  while (!pending.empty()) {
    const std::size_t k = runs.wait_any(pending);
    turnarounds[slot[k]] = pending[k].result().finished_at;
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
    slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(k));
  }
  runs.wait_idle();
  return turnarounds;
}

double p95(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t index =
      static_cast<std::size_t>(0.95 * static_cast<double>(values.size() - 1) + 0.5);
  return values[index];
}

double total(const std::vector<double>& turnarounds) {
  return *std::max_element(turnarounds.begin(), turnarounds.end());
}

void print_scenario(const char* name, const std::vector<double>& turnarounds) {
  std::printf("  %-14s", name);
  for (const double t : turnarounds) std::printf(" %10.0f", t);
  std::printf(" | %10.0f %10.0f\n", total(turnarounds), p95(turnarounds));
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  std::puts("===================================================================");
  std::puts("E17: multi-tenant RunService vs back-to-back runs on one EGEE grid");
  std::puts("     tenants: big(126) small(12) big(126) small(12), SP+DP");
  std::puts("===================================================================");

  const double solo_small = solo_makespan(kSmallPairs);
  const double solo_big = solo_makespan(kBigPairs);
  std::printf("solo makespans: big %.0f s, small %.0f s\n\n", solo_big, solo_small);

  const auto serial = back_to_back_turnarounds();
  const auto shared = multitenant_turnarounds();

  std::printf("  %-14s %10s %10s %10s %10s | %10s %10s\n", "turnaround (s)", "big-1",
              "small-1", "big-2", "small-2", "total", "p95");
  print_scenario("back-to-back", serial);
  print_scenario("multi-tenant", shared);
  std::puts("");

  bool ok = true;
  ok &= check(total(shared) < total(serial), "interleaving beats back-to-back total");
  ok &= check(p95(shared) < p95(serial), "p95 turnaround improves");
  ok &= check(shared[1] <= 2.0 * solo_small && shared[3] <= 2.0 * solo_small,
              "small tenants within 2x of solo (no starvation)");
  std::printf("\nspeed-up: total %.2fx, p95 %.2fx\n", total(serial) / total(shared),
              p95(serial) / p95(shared));
  return ok ? 0 : 1;
}
