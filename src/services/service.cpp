#include "services/service.hpp"

#include "data/dataref.hpp"

namespace moteur::services {

std::uint64_t Service::content_digest() const {
  return data::fnv1a("service:" + id_);
}

Result Service::synthesize_outputs(const Inputs& inputs) const {
  // Build a stable pseudo-GFN from the lineage of the inputs so repeated
  // simulation runs name results identically.
  std::string lineage;
  for (const auto& [port, token] : inputs) {
    if (!lineage.empty()) lineage += ",";
    lineage += token.id();
  }
  Result result;
  for (const auto& port : output_ports()) {
    OutputValue value;
    value.repr = "gfn://" + id() + "/" + port + "(" + lineage + ")";
    value.payload = value.repr;
    result.outputs.emplace(port, std::move(value));
  }
  return result;
}

}  // namespace moteur::services
