// The fault-tolerance subsystem: transient failures injected into the
// simulated grid must converge to zero lost tuples under the enactor's
// RetryPolicy, with dot-product provenance staying correct however
// out-of-order the (re)completions arrive under DP+SP.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/manifest.hpp"
#include "enactor/policy.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/ce_health.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace moteur::enactor {
namespace {

using services::JobProfile;
using workflow::Workflow;

// ---------------------------------------------------------------------------
// RetryPolicy / Outcome units
// ---------------------------------------------------------------------------

TEST(RetryPolicy, DefaultsKeepRetriesOff) {
  const RetryPolicy none = RetryPolicy::none();
  EXPECT_FALSE(none.retries_enabled());
  EXPECT_FALSE(none.timeout_enabled());
  EXPECT_EQ(none.backoff_seconds(2), 0.0);
}

TEST(RetryPolicy, ResubmitEnablesPlainRetries) {
  const RetryPolicy policy = RetryPolicy::resubmit(4);
  EXPECT_TRUE(policy.retries_enabled());
  EXPECT_FALSE(policy.timeout_enabled());  // needs timeout_multiplier too
  EXPECT_EQ(policy.max_attempts, 4u);
}

TEST(RetryPolicy, BackoffIsGeometricFromTheFirstRetry) {
  RetryPolicy policy = RetryPolicy::resubmit(5);
  policy.backoff_initial_seconds = 10.0;
  policy.backoff_factor = 3.0;
  EXPECT_EQ(policy.backoff_seconds(1), 0.0);   // the first attempt never waits
  EXPECT_EQ(policy.backoff_seconds(2), 10.0);  // first retry
  EXPECT_EQ(policy.backoff_seconds(3), 30.0);
  EXPECT_EQ(policy.backoff_seconds(4), 90.0);
}

TEST(Outcome, FactoriesAndClassification) {
  const Outcome ok = Outcome::success({});
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(ok.retryable());

  const Outcome transient = Outcome::failure(OutcomeStatus::kTransient, "boom");
  EXPECT_FALSE(transient.ok());
  EXPECT_TRUE(transient.retryable());
  EXPECT_EQ(transient.error, "boom");

  EXPECT_TRUE(Outcome::failure(OutcomeStatus::kTimedOut, "").retryable());
  EXPECT_FALSE(Outcome::failure(OutcomeStatus::kDefinitive, "").retryable());

  EXPECT_STREQ(to_string(OutcomeStatus::kOk), "Ok");
  EXPECT_STREQ(to_string(OutcomeStatus::kTransient), "Transient");
  EXPECT_STREQ(to_string(OutcomeStatus::kDefinitive), "Definitive");
  EXPECT_STREQ(to_string(OutcomeStatus::kTimedOut), "TimedOut");
  EXPECT_STREQ(to_string(OutcomeStatus::kSkipped), "Skipped");
}

TEST(FailurePolicyNames, RoundTripAndRejects) {
  EXPECT_STREQ(to_string(FailurePolicy::kFailFast), "failfast");
  EXPECT_STREQ(to_string(FailurePolicy::kContinue), "continue");
  EXPECT_EQ(parse_failure_policy("failfast"), FailurePolicy::kFailFast);
  EXPECT_EQ(parse_failure_policy("continue"), FailurePolicy::kContinue);
  EXPECT_THROW(parse_failure_policy("carry-on"), ParseError);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

data::InputDataSet items(const std::string& source, std::size_t count) {
  data::InputDataSet ds;
  ds.declare_input(source);
  for (std::size_t j = 0; j < count; ++j) {
    ds.add_item(source, "item" + std::to_string(j));
  }
  return ds;
}

/// src -> P0 -> P1 -> sink.
Workflow chain2() {
  Workflow wf("chain2");
  wf.add_source("src");
  wf.add_processor("P0", {"in"}, {"out"});
  wf.add_processor("P1", {"in"}, {"out"});
  wf.add_sink("sink");
  wf.link("src", "out", "P0", "in");
  wf.link("P0", "out", "P1", "in");
  wf.link("P1", "out", "sink", "in");
  return wf;
}

/// A faulty simulated grid whose failures surface to the enactor: the grid's
/// own internal resubmission is disabled (max_attempts = 1), so the enactor
/// retry policy alone decides whether a tuple survives.
struct FaultyRig {
  sim::Simulator simulator;
  grid::Grid grid;
  SimGridBackend backend;
  services::ServiceRegistry registry;

  static grid::GridConfig config(double failure_probability, double stuck_probability,
                                 std::uint64_t seed) {
    grid::GridConfig cfg = grid::GridConfig::constant(30.0, 4096, seed);
    cfg.failure_probability = failure_probability;
    cfg.max_attempts = 1;
    cfg.stuck_job_probability = stuck_probability;
    cfg.stuck_job_factor = 50.0;
    return cfg;
  }

  explicit FaultyRig(double failure_probability, double stuck_probability = 0.0,
                     std::uint64_t seed = 42)
      : grid(simulator, config(failure_probability, stuck_probability, seed)),
        backend(grid) {}

  EnactmentResult run(const Workflow& wf, const data::InputDataSet& ds,
                      EnactmentPolicy policy) {
    Enactor enactor(backend, registry, policy);
    return enactor.run({.workflow = wf, .inputs = ds});
  }
};

void register_chain_services(services::ServiceRegistry& registry,
                             double compute_seconds = 60.0) {
  for (const char* name : {"P0", "P1"}) {
    registry.add(services::make_simulated_service(name, {"in"}, {"out"},
                                                  JobProfile{compute_seconds, 0.0, 0.0}));
  }
}

std::set<data::IndexVector> sink_indices(const EnactmentResult& result,
                                         const std::string& sink = "sink") {
  std::set<data::IndexVector> out;
  for (const auto& token : result.sink_outputs.at(sink)) out.insert(token.indices());
  return out;
}

// ---------------------------------------------------------------------------
// The acceptance scenario: 10% injected transient failure, DP+SP
// ---------------------------------------------------------------------------

TEST(Retry, TransientFaultsConvergeToZeroLostTuples) {
  const std::size_t kItems = 30;
  FaultyRig rig(/*failure_probability=*/0.1);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::resubmit(5);
  const auto result = rig.run(chain2(), items("src", kItems), policy);

  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.invocations(), 2 * kItems);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), kItems);
  EXPECT_EQ(sink_indices(result).size(), kItems);  // every index exactly once
  // ~10% of 60 submissions fail at least once: resubmissions must show up
  // in the stats, and every retry is one extra backend submission.
  EXPECT_GT(result.retries(), 0u);
  EXPECT_EQ(result.submissions(), 2 * kItems + result.retries());
  EXPECT_EQ(result.timeouts(), 0u);
}

TEST(Retry, DisabledRetriesReproduceTheLossyBehaviour) {
  const std::size_t kItems = 30;
  FaultyRig rig(/*failure_probability=*/0.1);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::none();  // the seed behaviour: one shot per tuple
  const auto result = rig.run(chain2(), items("src", kItems), policy);

  EXPECT_GT(result.failures(), 0u);
  EXPECT_LT(result.sink_outputs.at("sink").size(), kItems);
  EXPECT_EQ(result.retries(), 0u);
  EXPECT_EQ(result.submissions(), result.timeline.invocation_count());
}

TEST(Retry, ExhaustedAttemptsAreCountedAsFailures) {
  const std::size_t kItems = 5;
  FaultyRig rig(/*failure_probability=*/1.0);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::resubmit(3);
  const auto result = rig.run(chain2(), items("src", kItems), policy);

  // P0 loses every tuple after 3 attempts each; P1 never receives anything.
  EXPECT_EQ(result.failures(), kItems);
  EXPECT_EQ(result.retries(), 2 * kItems);
  EXPECT_EQ(result.submissions(), 3 * kItems);
  EXPECT_EQ(result.invocations(), 0u);
  EXPECT_TRUE(result.sink_outputs.at("sink").empty());
}

// ---------------------------------------------------------------------------
// Provenance under out-of-order recompletion
// ---------------------------------------------------------------------------

TEST(Retry, DotProductProvenanceSurvivesRetries) {
  // combine(a[j], b[j]) must pair matching indices even when retries shuffle
  // the completion order arbitrarily.
  const std::size_t kItems = 24;
  Workflow wf("dot");
  wf.add_source("a");
  wf.add_source("b");
  wf.add_processor("combine", {"in1", "in2"}, {"out"});
  wf.processor("combine").iteration = workflow::IterationStrategy::kDot;
  wf.add_sink("sink");
  wf.link("a", "out", "combine", "in1");
  wf.link("b", "out", "combine", "in2");
  wf.link("combine", "out", "sink", "in");

  FaultyRig rig(/*failure_probability=*/0.15, /*stuck_probability=*/0.0, /*seed=*/7);
  rig.registry.add(services::make_simulated_service("combine", {"in1", "in2"}, {"out"},
                                                    JobProfile{45.0, 0.0, 0.0}));

  data::InputDataSet ds = items("a", kItems);
  ds.declare_input("b");
  for (std::size_t j = 0; j < kItems; ++j) ds.add_item("b", "right" + std::to_string(j));

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::resubmit(6);
  const auto result = rig.run(wf, ds, policy);

  EXPECT_EQ(result.failures(), 0u);
  ASSERT_EQ(result.sink_outputs.at("sink").size(), kItems);
  for (const auto& token : result.sink_outputs.at("sink")) {
    ASSERT_EQ(token.indices().size(), 1u);
    const std::size_t j = token.indices()[0];
    // The history tree must reference exactly a[j] and b[j] — any other
    // combination means a retry crossed lineages.
    const auto sources = token.provenance()->source_indices();
    EXPECT_EQ(sources.at("a"), std::set<std::size_t>{j});
    EXPECT_EQ(sources.at("b"), std::set<std::size_t>{j});
  }
}

// ---------------------------------------------------------------------------
// Timeout watchdog and backoff
// ---------------------------------------------------------------------------

TEST(Retry, TimeoutWatchdogRescuesStuckJobs) {
  const std::size_t kItems = 20;
  // 20% of attempts get stuck for 50x their payload; without the watchdog the
  // run would wait ~3000 s for each straggler.
  FaultyRig rig(/*failure_probability=*/0.0, /*stuck_probability=*/0.2, /*seed=*/11);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry.max_attempts = 4;
  policy.retry.timeout_multiplier = 3.0;
  policy.retry.timeout_min_samples = 3;
  const auto result = rig.run(chain2(), items("src", kItems), policy);

  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), kItems);
  EXPECT_GT(result.timeouts(), 0u);
  // A stuck payload runs 60 * 50 = 3000 s; rescued runs finish far earlier.
  EXPECT_LT(result.makespan(), 3000.0);

  // The same run without a watchdog crawls through every straggler.
  FaultyRig slow_rig(0.0, 0.2, 11);
  register_chain_services(slow_rig.registry);
  const auto slow = slow_rig.run(chain2(), items("src", kItems),
                                 EnactmentPolicy::sp_dp());
  EXPECT_GT(slow.makespan(), result.makespan());
  EXPECT_EQ(slow.timeouts(), 0u);
}

TEST(Retry, BackoffDelaysResubmission) {
  FaultyRig rig(/*failure_probability=*/1.0);
  register_chain_services(rig.registry, /*compute_seconds=*/1.0);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry.max_attempts = 2;
  policy.retry.backoff_initial_seconds = 500.0;
  const auto result = rig.run(chain2(), items("src", 1), policy);

  // The single tuple fails, waits 500 s in backoff, fails again: the second
  // attempt's trace must start after the backoff gap.
  EXPECT_EQ(result.failures(), 1u);
  EXPECT_EQ(result.retries(), 1u);
  double last_submit = 0.0;
  for (const auto& trace : result.timeline.traces()) {
    last_submit = std::max(last_submit, trace.submit_time);
  }
  EXPECT_GE(last_submit, 500.0);
}

// ---------------------------------------------------------------------------
// Progress events and manifest round-trip
// ---------------------------------------------------------------------------

TEST(Retry, ProgressEventsCarryAttemptNumbers) {
  const std::size_t kItems = 12;
  FaultyRig rig(/*failure_probability=*/0.3);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::resubmit(5);

  Enactor enactor(rig.backend, rig.registry, policy);
  std::map<ProgressEvent::Kind, std::size_t> counts;
  std::size_t max_attempt = 0;
  enactor.add_event_subscriber(progress_subscriber([&](const ProgressEvent& event) {
    ++counts[event.kind];
    max_attempt = std::max(max_attempt, event.attempt);
  }));
  const auto result = enactor.run({.workflow = chain2(), .inputs = items("src", kItems)});

  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(counts[ProgressEvent::Kind::kSubmitted], result.submissions());
  EXPECT_EQ(counts[ProgressEvent::Kind::kRetried], result.retries());
  EXPECT_EQ(counts[ProgressEvent::Kind::kTimedOut], result.timeouts());
  EXPECT_GT(result.retries(), 0u);
  EXPECT_GT(max_attempt, 1u);  // some event observed a resubmission
}

TEST(Retry, ManifestRoundTripsRetryPolicy) {
  RunManifest manifest;
  manifest.workflow = chain2();
  manifest.inputs = items("src", 2);
  manifest.policy = EnactmentPolicy::sp_dp();
  manifest.policy.retry.max_attempts = 4;
  manifest.policy.retry.timeout_multiplier = 2.5;
  manifest.policy.retry.timeout_min_samples = 7;
  manifest.policy.retry.backoff_initial_seconds = 30.0;
  manifest.policy.retry.backoff_factor = 1.5;

  const RunManifest back = RunManifest::from_xml(manifest.to_xml());
  EXPECT_EQ(back.policy.retry.max_attempts, 4u);
  EXPECT_DOUBLE_EQ(back.policy.retry.timeout_multiplier, 2.5);
  EXPECT_EQ(back.policy.retry.timeout_min_samples, 7u);
  EXPECT_DOUBLE_EQ(back.policy.retry.backoff_initial_seconds, 30.0);
  EXPECT_DOUBLE_EQ(back.policy.retry.backoff_factor, 1.5);

  // Retries off => no retry attributes are written at all.
  RunManifest plain;
  plain.workflow = chain2();
  plain.inputs = items("src", 1);
  EXPECT_EQ(plain.to_xml().find("retry"), std::string::npos);
}

TEST(Retry, ManifestRoundTripsFailurePolicyAndBreaker) {
  RunManifest manifest;
  manifest.workflow = chain2();
  manifest.inputs = items("src", 1);
  manifest.policy = EnactmentPolicy::sp_dp();
  manifest.policy.failure_policy = FailurePolicy::kContinue;
  manifest.policy.breaker.enabled = true;
  manifest.policy.breaker.window = 12;
  manifest.policy.breaker.threshold = 5;
  manifest.policy.breaker.cooldown_seconds = 600.0;

  const RunManifest back = RunManifest::from_xml(manifest.to_xml());
  EXPECT_EQ(back.policy.failure_policy, FailurePolicy::kContinue);
  EXPECT_TRUE(back.policy.breaker.enabled);
  EXPECT_EQ(back.policy.breaker.window, 12u);
  EXPECT_EQ(back.policy.breaker.threshold, 5u);
  EXPECT_DOUBLE_EQ(back.policy.breaker.cooldown_seconds, 600.0);

  // Defaults write no fault-containment attributes at all.
  RunManifest plain;
  plain.workflow = chain2();
  plain.inputs = items("src", 1);
  const std::string xml = plain.to_xml();
  EXPECT_EQ(xml.find("failurePolicy"), std::string::npos);
  EXPECT_EQ(xml.find("breaker"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-CE circuit breakers
// ---------------------------------------------------------------------------

grid::BreakerPolicy breaker_of(std::size_t window, std::size_t threshold,
                               double cooldown_seconds) {
  grid::BreakerPolicy breaker;
  breaker.enabled = true;
  breaker.window = window;
  breaker.threshold = threshold;
  breaker.cooldown_seconds = cooldown_seconds;
  return breaker;
}

TEST(Breaker, OpensAtThresholdAndIgnoresStaleOutcomes) {
  grid::CeHealth health(breaker_of(4, 2, 100.0));
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kClosed);
  health.record("ce0", /*success=*/false, 1.0);
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kClosed);
  health.record("ce0", /*success=*/false, 2.0);
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kOpen);
  EXPECT_EQ(health.opens(), 1u);
  EXPECT_EQ(health.open_breakers(), 1u);

  // A straggler completing after the trip cannot flap the open breaker.
  health.record("ce0", /*success=*/true, 3.0);
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kOpen);

  EXPECT_FALSE(health.admissible("ce0", 50.0));  // still cooling down
  EXPECT_TRUE(health.admissible("ce0", 150.0));  // the would-be probe
  EXPECT_TRUE(health.admissible("elsewhere", 0.0));  // unknown CEs are healthy
}

TEST(Breaker, SuccessesAgeFailuresOutOfTheWindow) {
  grid::CeHealth health(breaker_of(3, 2, 100.0));
  health.record("ce0", false, 1.0);
  health.record("ce0", true, 2.0);
  health.record("ce0", true, 3.0);
  health.record("ce0", true, 4.0);  // the failure has left the window
  health.record("ce0", false, 5.0);
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kClosed);
  EXPECT_EQ(health.opens(), 0u);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccessReopensOnFailure) {
  grid::CeHealth health(breaker_of(4, 2, 100.0));
  std::vector<grid::CeHealth::Transition> transitions;
  health.set_transition_listener(
      [&](const grid::CeHealth::Transition& t) { transitions.push_back(t); });
  health.record("ce0", false, 0.0);
  health.record("ce0", false, 0.0);
  ASSERT_EQ(health.state("ce0"), grid::BreakerState::kOpen);

  health.on_routed("ce0", 150.0);  // cooldown over: the probe goes out
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kHalfOpen);
  EXPECT_EQ(health.probes(), 1u);
  EXPECT_FALSE(health.admissible("ce0", 200.0));  // one probe at a time

  health.record("ce0", false, 200.0);  // probe failed: reopen
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kOpen);
  EXPECT_FALSE(health.admissible("ce0", 250.0));  // cooldown restarted

  health.on_routed("ce0", 400.0);
  health.record("ce0", true, 420.0);  // second probe succeeds
  EXPECT_EQ(health.state("ce0"), grid::BreakerState::kClosed);
  EXPECT_EQ(health.opens(), 2u);
  EXPECT_EQ(health.closes(), 1u);

  ASSERT_EQ(transitions.size(), 5u);  // open, half-open, open, half-open, closed
  EXPECT_EQ(transitions.front().computing_element, "ce0");
  EXPECT_EQ(transitions.front().to, grid::BreakerState::kOpen);
  EXPECT_EQ(transitions.back().to, grid::BreakerState::kClosed);
}

TEST(Breaker, RoutesAwayFromAFlakySite) {
  // Two equivalent sites, one of which fails every attempt: with the breaker
  // the run converges to zero lost tuples and the timeline records the trip.
  const std::size_t kItems = 16;
  auto make_config = [](std::uint64_t seed) {
    grid::GridConfig cfg = grid::GridConfig::constant(30.0, 4096, seed);
    cfg.computing_elements.clear();
    grid::ComputingElementConfig good;
    good.name = "good";
    good.worker_slots = 64;
    grid::ComputingElementConfig flaky;
    flaky.name = "flaky";
    flaky.worker_slots = 64;
    flaky.failure_probability = 1.0;
    cfg.computing_elements = {good, flaky};
    cfg.max_attempts = 1;  // failures surface to the enactor
    return cfg;
  };

  auto run_with = [&](bool breaker_enabled) {
    sim::Simulator simulator;
    grid::Grid grid(simulator, make_config(42));
    SimGridBackend backend(grid);
    services::ServiceRegistry registry;
    register_chain_services(registry);
    EnactmentPolicy policy = EnactmentPolicy::sp_dp();
    policy.retry = RetryPolicy::resubmit(6);
    if (breaker_enabled) {
      policy.breaker = breaker_of(4, 2, /*cooldown=*/1e9);  // stays open
    }
    Enactor enactor(backend, registry, policy);
    return enactor.run({.workflow = chain2(), .inputs = items("src", kItems)});
  };

  const auto with_breaker = run_with(true);
  EXPECT_EQ(with_breaker.failures(), 0u);
  EXPECT_EQ(with_breaker.sink_outputs.at("sink").size(), kItems);
  bool flaky_opened = false;
  for (const auto& t : with_breaker.timeline.breaker_transitions()) {
    if (t.computing_element == "flaky" && t.to == grid::BreakerState::kOpen) {
      flaky_opened = true;
    }
    EXPECT_NE(t.to, grid::BreakerState::kClosed);  // never recovers in-run
  }
  EXPECT_TRUE(flaky_opened);

  // Without the breaker the flaky site keeps receiving (and failing)
  // submissions for the whole run.
  const auto without = run_with(false);
  EXPECT_TRUE(without.timeline.breaker_transitions().empty());
  EXPECT_GT(without.retries(), with_breaker.retries());
}

// ---------------------------------------------------------------------------
// FailurePolicy::kContinue — poisoned tokens and partial results
// ---------------------------------------------------------------------------

TEST(FailurePolicy, ContinueDeliversPartialResultsWithAFullAccounting) {
  const std::size_t kItems = 20;
  FaultyRig rig(/*failure_probability=*/0.5, /*stuck_probability=*/0.0, /*seed=*/9);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::resubmit(2);
  policy.failure_policy = FailurePolicy::kContinue;
  const auto result = rig.run(chain2(), items("src", kItems), policy);

  // p=0.5 with two attempts loses ~a quarter of the tuples at each stage;
  // the run must still terminate with the surviving tuples delivered.
  const std::size_t delivered = result.sink_outputs.at("sink").size();
  EXPECT_GT(result.failures(), 0u);
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, kItems);
  for (const auto& token : result.sink_outputs.at("sink")) {
    EXPECT_FALSE(token.poisoned());  // sinks only carry real data
  }

  const auto& report = result.failure_report;
  ASSERT_FALSE(report.empty());
  // Every missing sink output is exactly one lost tuple (at P0 or P1).
  EXPECT_EQ(delivered + report.lost.size(), kItems);
  EXPECT_EQ(report.lost.size(), result.failures());
  for (const auto& lost : report.lost) {
    EXPECT_TRUE(lost.processor == "P0" || lost.processor == "P1");
    EXPECT_EQ(lost.status, "Transient");
    EXPECT_FALSE(lost.cause.empty());
    EXPECT_EQ(lost.indices.size(), 1u);
  }
  // Each tuple lost at P0 skips exactly one P1 invocation downstream.
  const auto p0_losses = static_cast<std::size_t>(
      std::count_if(report.lost.begin(), report.lost.end(),
                    [](const FailureReport::LostTuple& lost) {
                      return lost.processor == "P0";
                    }));
  EXPECT_EQ(result.skipped(), p0_losses);
  EXPECT_EQ(report.skipped.size(), p0_losses);
  for (const auto& skipped : report.skipped) {
    EXPECT_EQ(skipped.processor, "P1");
    EXPECT_EQ(skipped.origin_processor, "P0");
  }
  // Every lost tuple surfaces as a poisoned token at the sink.
  EXPECT_EQ(report.poisoned_at_sink.at("sink"), kItems - delivered);

  // The report serializes to JSON and to a human-readable summary.
  EXPECT_NE(report.to_json().find("\"lost\""), std::string::npos);
  EXPECT_NE(report.to_json().find("\"poisonedAtSink\""), std::string::npos);
  EXPECT_NE(report.to_text().find("P0"), std::string::npos);
}

TEST(FailurePolicy, FailFastKeepsTheSeedAccounting) {
  // The default policy must reproduce the pre-containment numbers exactly:
  // no skips, no report, lossy sinks.
  const std::size_t kItems = 30;
  FaultyRig rig(/*failure_probability=*/0.1);
  register_chain_services(rig.registry);

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::none();
  const auto result = rig.run(chain2(), items("src", kItems), policy);

  EXPECT_GT(result.failures(), 0u);
  EXPECT_EQ(result.skipped(), 0u);
  EXPECT_TRUE(result.failure_report.skipped.empty());
  EXPECT_TRUE(result.failure_report.poisoned_at_sink.empty());
  // Lost tuples are still accounted for, even under fail-fast.
  EXPECT_EQ(result.failure_report.lost.size(), result.failures());
}

TEST(FailurePolicy, PoisonPropagatesThroughCrossIteration) {
  // a -> P0 (always fails) -> combine <- b: every (poisoned, b) pair must be
  // skipped, so the skip count multiplies across the cross product.
  const std::size_t kA = 4, kB = 3;
  Workflow wf("cross");
  wf.add_source("a");
  wf.add_source("b");
  wf.add_processor("P0", {"in"}, {"out"});
  wf.add_processor("combine", {"in1", "in2"}, {"out"});
  wf.processor("combine").iteration = workflow::IterationStrategy::kCross;
  wf.add_sink("sink");
  wf.link("a", "out", "P0", "in");
  wf.link("P0", "out", "combine", "in1");
  wf.link("b", "out", "combine", "in2");
  wf.link("combine", "out", "sink", "in");

  FaultyRig rig(/*failure_probability=*/1.0);
  rig.registry.add(services::make_simulated_service("P0", {"in"}, {"out"},
                                                    JobProfile{60.0, 0.0, 0.0}));
  rig.registry.add(services::make_simulated_service("combine", {"in1", "in2"},
                                                    {"out"},
                                                    JobProfile{45.0, 0.0, 0.0}));

  data::InputDataSet ds = items("a", kA);
  ds.declare_input("b");
  for (std::size_t j = 0; j < kB; ++j) ds.add_item("b", "right" + std::to_string(j));

  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.retry = RetryPolicy::resubmit(2);
  policy.failure_policy = FailurePolicy::kContinue;
  const auto result = rig.run(wf, ds, policy);

  EXPECT_EQ(result.failures(), kA);        // every a-tuple dies at P0
  EXPECT_EQ(result.skipped(), kA * kB);    // each poison crosses every b
  EXPECT_TRUE(result.sink_outputs.at("sink").empty());
  EXPECT_EQ(result.failure_report.poisoned_at_sink.at("sink"), kA * kB);
  for (const auto& skipped : result.failure_report.skipped) {
    EXPECT_EQ(skipped.processor, "combine");
    EXPECT_EQ(skipped.origin_processor, "P0");
    EXPECT_EQ(skipped.indices.size(), 2u);  // cross concatenates indices
  }
}

}  // namespace
}  // namespace moteur::enactor
