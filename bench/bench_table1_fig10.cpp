// E1 — Reproduces Table 1 and Figure 10 of the paper: Bronze-Standard
// execution time for every optimization configuration (NOP, JG, SP, DP,
// SP+DP, SP+DP+JG) over 12 / 66 / 126 image pairs, on the simulated
// EGEE-like infrastructure. Figure 10 additionally sweeps intermediate
// sizes to expose the straight-line behaviour the paper reports.
#include <cstdio>
#include <string>

#include "app/experiment.hpp"
#include "util/strings.hpp"

namespace {

// Paper values for side-by-side comparison (Table 1, seconds).
struct PaperRow {
  const char* configuration;
  double t12, t66, t126;
};
constexpr PaperRow kPaperTable1[] = {
    {"NOP", 32855, 76354, 133493},   {"JG", 22990, 68427, 125503},
    {"SP", 18302, 63360, 120407},    {"DP", 17690, 26437, 34027},
    {"SP+DP", 7825, 12143, 17823},   {"SP+DP+JG", 5524, 9053, 14547},
};

}  // namespace

int main() {
  using namespace moteur;

  std::puts("=============================================================");
  std::puts("E1: Table 1 — execution time (s) per configuration and size");
  std::puts("    (Bronze Standard on the simulated EGEE infrastructure)");
  std::puts("=============================================================");

  app::ExperimentOptions options;  // defaults: 12/66/126, all six configs
  const app::ExperimentTable table = app::run_bronze_experiment(options);

  std::puts(table.render_table1().c_str());

  std::puts("Paper Table 1 (measured on EGEE, 2006) for comparison:");
  std::printf("%-14s%14s%14s%14s\n", "Configuration", "12 images", "66 images",
              "126 images");
  for (const auto& row : kPaperTable1) {
    std::printf("%-14s%14.0f%14.0f%14.0f\n", row.configuration, row.t12, row.t66,
                row.t126);
  }

  std::puts("\nShape checks (paper vs simulation):");
  for (const std::size_t n : options.sizes) {
    std::string order = "  ordering at " + std::to_string(n) + " pairs: ";
    bool ok = true;
    double previous = 1e300;
    for (const char* config : {"NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"}) {
      const double t = table.cell(config, n).makespan_seconds;
      if (t > previous) ok = false;
      previous = t;
    }
    order += ok ? "NOP > JG > SP > DP > SP+DP > SP+DP+JG  [OK]"
                : "VIOLATED";
    std::puts(order.c_str());
  }
  {
    const double speedup =
        table.cell("NOP", 126).makespan_seconds /
        table.cell("SP+DP+JG", 126).makespan_seconds;
    std::printf("  overall speed-up at 126 pairs: %.2fx (paper: ~9.2x)\n\n", speedup);
  }

  std::puts("=============================================================");
  std::puts("E1: Figure 10 — execution time (hours) vs input size");
  std::puts("=============================================================");
  app::ExperimentOptions sweep = options;
  sweep.sizes = {12, 30, 48, 66, 90, 108, 126};
  const app::ExperimentTable curves = app::run_bronze_experiment(sweep);
  std::puts(curves.render_figure10().c_str());

  std::puts("(Columns are close to straight lines, as the paper observes:");
  std::puts(" \"the infrastructure is large enough to support the increasing");
  std::puts(" load\"; R^2 of the linear fits is reported by bench_table2_fits.)");
  return 0;
}
