#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/invocation_cache.hpp"
#include "enactor/enactor.hpp"
#include "enactor/run_request.hpp"
#include "grid/ce_health.hpp"
#include "policy/policy.hpp"
#include "util/stats.hpp"
#include "workflow/iteration.hpp"
#include "workflow/iteration_tree.hpp"

namespace moteur::enactor {

/// One full enactment, exposed incrementally so a caller can interleave
/// several engines over one shared backend (RunService) or drive a single
/// one to completion (Enactor::run). Single-threaded: every method runs on
/// the thread driving the backend; backends funnel completions and timers
/// through drive().
///
/// Lifetime: construct via std::make_shared — every callback handed to the
/// backend (completions, watchdogs, backoff timers) holds only a weak_ptr,
/// so attempts still in backend flight when the engine dies (watchdog-clone
/// stragglers, deadlock unwinding, cancellation) are discarded instead of
/// touching a dead engine. Destroy the engine before its backend.
///
/// Protocol: start() once, then while !finished() have the backend drive
/// with a done-predicate that includes finished(); on a stall (drive()
/// returning false) call try_unstall() and fail the run if it reports no
/// progress; finally finish() exactly once to collect the result.
class Engine : public std::enable_shared_from_this<Engine> {
 public:
  struct Options {
    /// Stamped on every emitted obs::RunEvent; empty picks the workflow name.
    std::string run_id;
    /// Service-owned per-CE breaker ledger shared by all concurrent runs.
    /// When set, the engine records attempt outcomes into it but does not
    /// attach/detach it from the backend or hook its listeners — grid health
    /// is physical infrastructure state owned by whoever shares it. When
    /// null and the policy enables the breaker, the engine owns a per-run
    /// ledger, attaches it for the run and detaches it on destruction.
    grid::CeHealth* shared_health = nullptr;
    /// Invocation memoization cache consulted before submission when the
    /// policy enables caching. Shared across runs (and tenants, through the
    /// RunService); not owned. Null = no caching.
    data::InvocationCache* cache = nullptr;
  };

  /// Validates `workflow` and applies the grouping rewrite per `policy`.
  /// Throws EnactmentError on an invalid workflow or binding mismatch.
  Engine(ExecutionBackend& backend, services::ServiceRegistry& registry,
         EnactmentPolicy policy, PayloadResolver resolver,
         std::vector<EventSubscriber> subscribers,
         const workflow::Workflow& workflow, data::InputDataSet inputs,
         Options options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Emit sources and dispatch everything initially firable.
  void start();

  /// Whether every processor has finished (the run may be collected).
  bool finished() const;

  /// Stall recovery: attempt feedback-port closure. Returns true when it
  /// made progress; false means the run is genuinely deadlocked.
  bool try_unstall();

  /// Names of the unfinished processors, for deadlock diagnostics.
  std::string stuck_processors() const;

  /// Collect sinks and return the result. Call exactly once, after
  /// finished() holds (or when abandoning a deadlocked/cancelled run — the
  /// result then reflects whatever settled).
  EnactmentResult finish();

  const std::string& run_id() const { return run_id_; }

 private:
  struct PState {
    const workflow::Processor* proc = nullptr;
    std::shared_ptr<services::Service> service;  // null for sources/sinks
    std::unique_ptr<workflow::CompositeIterationBuffer> buffer;  // plain services
    std::map<std::string, std::vector<data::Token>> collected;  // sync + sinks
    std::set<std::string> collected_closed;  // closed ports (sync/sink)
    std::deque<workflow::IterationBuffer::Tuple> ready;
    std::size_t in_flight = 0;  // unresolved logical submissions
    std::size_t fired = 0;
    bool finished = false;
    bool sync_fired = false;

    /// One non-feedback inlet of an input port, with its producer resolved
    /// to a direct state pointer (nullptr marks a feedback inlet).
    struct Inlet {
      const workflow::Link* link = nullptr;
      const PState* producer = nullptr;
    };

    // Hot-path caches, built once by build_states(): the dispatch/closure
    // passes and per-completion delivery run per event, so they must not
    // re-resolve names through states_ or rebuild link vectors per call.
    std::vector<const workflow::Link*> outlets;       // links_out_of(proc)
    std::vector<const PState*> stage_preds;           // SP-off barrier waits
    std::vector<const PState*> coord_waits;           // coordination constraints
    std::vector<std::pair<std::string, std::vector<Inlet>>> inlets;  // per port
  };

  /// One logical unit of work handed to the backend: a (possibly batched)
  /// set of tuples plus their bindings. A submission stays unresolved while
  /// attempts — the original, transient-failure resubmissions, timeout
  /// clones — race; the first success wins, late completions are discarded.
  struct Submission {
    PState* state = nullptr;
    std::uint64_t id = 0;  // run-unique invocation id (observability)
    std::vector<workflow::IterationBuffer::Tuple> tuples;
    std::vector<services::Inputs> bindings;
    /// Invocation-cache key per tuple ("" = not memoizable: caching off,
    /// non-deterministic service, barrier aggregate, or undigested inputs).
    /// A successful completion inserts each tuple's result under its key.
    std::vector<std::string> cache_keys;
    std::size_t attempts_started = 0;
    std::size_t attempts_in_flight = 0;
    std::size_t pending_resubmits = 0;  // backoff timers not yet fired
    bool resolved = false;
    double attempt_started_at = 0.0;  // backend time of the latest attempt
    std::optional<ExecutionBackend::TimerId> watchdog;
    /// Lineage recovery (kDataLost outcomes): rounds consumed against
    /// policy_.max_recovery_depth, producer re-fires still in flight, and
    /// the files the last kDataLost attempt reported lost.
    std::size_t recovery_rounds = 0;
    std::size_t pending_recoveries = 0;
    bool recovery_failed = false;
    std::vector<std::string> lost_files;
    /// CEs earlier attempts landed on (oldest first) — the placement
    /// policy's avoid-set input for retries and timeout clones.
    std::vector<std::string> tried_ces;
  };

  /// Producer record for one logical file: the provenance chain carries no
  /// payloads, so the engine keeps the producing processor and input tuple
  /// alongside — enough to re-fire the invocation that derived the file.
  /// Feedback-recirculated tokens drop their digests, so no lineage entry
  /// ever points back into a loop: the recorded graph is acyclic.
  struct Lineage {
    PState* state = nullptr;
    workflow::IterationBuffer::Tuple tuple;
  };

  /// One in-flight re-derivation of a lost file. Recovery executions bypass
  /// the Submission bookkeeping entirely: their only purpose is the side
  /// effect of re-registering the file's replicas (the backend registers
  /// outputs of successful jobs), after which the consumer resubmits.
  struct Recovery {
    PState* state = nullptr;
    workflow::IterationBuffer::Tuple tuple;
    std::string lfn;
    std::size_t depth = 1;
    std::size_t attempts = 0;
    std::function<void(bool)> on_done;
  };

  void build_states();
  void emit_sources();
  void deliver(const workflow::Link& link, data::Token token);
  /// Dispatch everything firable, then run the closure fixpoint; repeat
  /// until a full pass makes no progress.
  void pump();
  bool dispatch_pass();
  bool closure_pass();
  bool can_fire(const PState& state) const;
  /// Data sets batched into the next submission of this service (§5.4
  /// adaptive granularity when enabled, else the static policy value).
  std::size_t target_batch(const PState& state) const;
  void fire(PState& state, std::vector<workflow::IterationBuffer::Tuple> tuples);
  void fire_barrier(PState& state);
  void start_attempt(const std::shared_ptr<Submission>& sub);
  void arm_watchdog(const std::shared_ptr<Submission>& sub);
  /// Arm watchdogs on outstanding submissions that predate the median (a DP
  /// burst submits everything before any sample exists).
  void arm_pending_watchdogs();
  void on_watchdog(const std::shared_ptr<Submission>& sub);
  void on_attempt_complete(const std::shared_ptr<Submission>& sub, std::size_t attempt,
                           Outcome outcome);
  /// Mark the submission settled: no further attempt may deliver or fail it.
  void resolve(const std::shared_ptr<Submission>& sub);
  void resolve_failure(const std::shared_ptr<Submission>& sub, std::size_t attempt,
                       OutcomeStatus status, const std::string& error);
  /// Lineage recovery is live: the policy enables it and the backend has a
  /// replica catalog to recover against.
  bool recovery_enabled() const;
  /// Remember who derived `lfn` (and from what), for later re-derivation.
  void record_lineage(PState& state, const workflow::IterationBuffer::Tuple& tuple,
                      const data::DataRef& ref);
  /// React to a kDataLost outcome: re-derive every lost file (or, for files
  /// this run did not derive, rely on the backend re-seeding source replicas
  /// at resubmission), then re-fire the consumer. Returns false when the
  /// recovery budget is exhausted or recovery is off — the caller then fails
  /// the submission for real.
  bool try_recover(const std::shared_ptr<Submission>& sub, std::size_t attempt,
                   const Outcome& outcome);
  /// Re-derive one file (recursing into its own lost inputs, bounded by
  /// policy_.max_recovery_depth); `on_done(ok)` fires exactly once.
  void recover_file(const std::string& lfn, std::size_t depth,
                    std::function<void(bool)> on_done);
  void start_recovery(const std::shared_ptr<Recovery>& rec);
  void on_recovery_complete(const std::shared_ptr<Recovery>& rec, Outcome outcome);
  /// Wire up the per-run health ledger (owned mode) or adopt the shared one.
  void setup_health();
  /// The operative ledger: shared (service mode) or owned (per-run).
  grid::CeHealth* health() const;
  void on_breaker_transition(const grid::CeHealth::Transition& t);
  /// Emit one poisoned token per output port of `state` for the failed or
  /// skipped `tuple`, delivered over all non-feedback outgoing links (a
  /// poisoned token must not recirculate a loop).
  void poison_outputs(PState& state, const workflow::IterationBuffer::Tuple& tuple,
                      const std::shared_ptr<const data::TokenError>& error);
  /// Account for a tuple whose inputs are poisoned: it never executes.
  void skip_tuple(PState& state, workflow::IterationBuffer::Tuple tuple);
  /// Whether this processor's invocations may be memoized at all.
  bool cacheable(const PState& state) const;
  /// Invocation-cache key for one tuple ("" when not memoizable: a poisoned
  /// or undigested input defeats content addressing).
  std::string tuple_cache_key(const PState& state,
                              const workflow::IterationBuffer::Tuple& tuple) const;
  /// Probe the invocation cache for `tuple`; on a hit, serve the memoized
  /// outputs without any backend work and return true.
  bool try_serve_cached(PState& state, const workflow::IterationBuffer::Tuple& tuple);
  /// Whether another attempt may still be launched for this submission.
  bool attempts_left(const Submission& sub) const;
  /// Median backend latency of successful submissions so far (0 if none).
  double median_latency() const;
  bool try_feedback_closure();
  bool all_finished() const;
  void check_binding(const PState& state) const;

  PState& state_of(const std::string& name) { return states_.at(name); }

  // --- Observability: the structured event stream every consumer (span
  // recorder, metrics, the legacy ProgressEvent adapter) subscribes to.
  // Events carry the running totals at emission time, so emission points sit
  // strictly after the corresponding stats_ updates.
  bool observing() const { return !subscribers_.empty(); }
  obs::RunEvent make_event(obs::RunEvent::Kind kind) const;
  obs::RunEvent make_event(obs::RunEvent::Kind kind, const Submission& sub,
                           std::size_t attempt) const;
  void emit(const obs::RunEvent& event) const;

  ExecutionBackend& backend_;
  services::ServiceRegistry& registry_;
  EnactmentPolicy policy_;
  PayloadResolver resolver_;
  std::vector<EventSubscriber> subscribers_;
  workflow::Workflow workflow_{"empty"};
  data::InputDataSet inputs_;
  std::string run_id_;
  grid::CeHealth* shared_health_ = nullptr;
  data::InvocationCache* cache_ = nullptr;  // not owned; null = caching off

  std::map<std::string, PState> states_;
  std::vector<std::string> topo_order_;
  /// states_ entries in topological order — the per-pass iteration order,
  /// resolved once so the passes never look names up again.
  std::vector<PState*> topo_states_;
  /// Link -> consuming state, so deliver() resolves per token without a
  /// string map lookup. Keys are pointers into workflow_.links(), which is
  /// stable after construction.
  std::unordered_map<const workflow::Link*, PState*> link_consumer_;
  /// Iteration counters per feedback link (index extension, see deliver()).
  std::map<const workflow::Link*, std::size_t> feedback_counters_;
  /// Scratch buffer for median_latency(): reused so the per-watchdog median
  /// never reallocates once the sample vector stops growing.
  mutable std::vector<double> median_scratch_;
  /// Online estimate of the per-job middleware overhead (adaptive batching).
  RunningStats observed_overhead_;
  /// Latencies of successful submissions — the running-median base of the
  /// timeout-resubmission watchdog.
  std::vector<double> latency_samples_;
  /// Unresolved submissions, for late watchdog arming (pruned lazily).
  std::vector<std::weak_ptr<Submission>> outstanding_;
  std::uint64_t next_submission_id_ = 1;
  std::size_t tuples_in_flight_ = 0;  // across all unresolved submissions
  /// Retry/clone placement policy, constructed from policy_.placement when
  /// named (null = `rematch`: no avoidance, the historical behavior).
  std::unique_ptr<policy::PlacementPolicy> placement_;
  /// Lineage ledger: logical file name -> producer record, populated as
  /// ref-carrying outputs are delivered (recovery enabled only).
  std::map<std::string, Lineage> lineage_;
  /// Per-run circuit-breaker ledger, allocated when policy_.breaker is
  /// enabled and no shared ledger was provided; the backend holds a raw
  /// pointer until the destructor detaches it.
  std::unique_ptr<grid::CeHealth> owned_health_;
  EnactmentResult result_;
};

}  // namespace moteur::enactor
