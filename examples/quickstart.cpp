// Quickstart: compose three services into a workflow, run it over a data
// set on the simulated EGEE grid under the fully-optimized policy, and
// inspect the results, the timeline and the execution diagram.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "data/dataset.hpp"
#include "enactor/diagram.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

int main() {
  using namespace moteur;

  // 1. The application workflow: source -> prepare -> analyze -> sink
  //    (the Figure-1 shape), described port by port.
  workflow::Workflow wf("quickstart");
  wf.add_source("images");
  wf.add_processor("prepare", {"img"}, {"clean"});
  wf.add_processor("analyze", {"img"}, {"report"});
  wf.add_sink("reports");
  wf.link("images", "out", "prepare", "img");
  wf.link("prepare", "clean", "analyze", "img");
  wf.link("analyze", "report", "reports", "in");

  // 2. Service implementations. Here: pure simulation services that only
  //    describe the grid job each invocation submits (see the
  //    bronze_standard example for services that really compute).
  services::ServiceRegistry registry;
  registry.add(services::make_simulated_service(
      "prepare", {"img"}, {"clean"},
      services::JobProfile{/*compute=*/120.0, /*in MB=*/7.8, /*out MB=*/7.8}));
  registry.add(services::make_simulated_service(
      "analyze", {"img"}, {"report"},
      services::JobProfile{/*compute=*/300.0, /*in MB=*/7.8, /*out MB=*/0.1}));

  // 3. The input data set: ten images, declared dynamically (the defining
  //    convenience of the service-based approach).
  data::InputDataSet inputs;
  for (int j = 0; j < 10; ++j) {
    inputs.add_item("images", "gfn://images/img" + std::to_string(j) + ".mhd");
  }

  // 4. An execution backend: the simulated EGEE-like production grid.
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::egee2006());
  enactor::SimGridBackend backend(grid);

  // 5. Enact with every optimization on: workflow + data + service
  //    parallelism and job grouping. A progress listener streams events.
  enactor::Enactor moteur(backend, registry, enactor::EnactmentPolicy::sp_dp_jg());
  moteur.add_event_subscriber(
      enactor::progress_subscriber([](const enactor::ProgressEvent& event) {
        if (event.kind == enactor::ProgressEvent::Kind::kProcessorFinished) {
          std::printf("  [t=%6.0fs] %s finished (%zu invocations so far)\n", event.time,
                      event.processor.c_str(), event.total_invocations);
        }
      }));
  const enactor::EnactmentResult result = moteur.run({.workflow = wf, .inputs = inputs});

  std::printf("makespan:     %s (%.0f s)\n", format_duration(result.makespan()).c_str(),
              result.makespan());
  std::printf("invocations:  %zu logical, %zu grid jobs (grouping fused %zu chains)\n",
              result.invocations(), result.submissions(), result.grouping.groups.size());
  std::printf("results:      %zu tokens on sink 'reports'\n",
              result.sink_outputs.at("reports").size());
  for (const auto& token : result.sink_outputs.at("reports")) {
    std::printf("  %s  %s\n", data::to_string(token.indices()).c_str(),
                token.repr().c_str());
  }

  std::puts("\nexecution diagram (rows = processors, columns = time):");
  enactor::DiagramOptions options;
  options.seconds_per_column = 600.0;
  std::fputs(enactor::render_execution_diagram(
                 result.timeline, {"prepare+analyze", "prepare", "analyze"}, options)
                 .c_str(),
             stdout);
  return 0;
}
