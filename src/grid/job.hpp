#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace moteur::grid {

using JobId = std::uint64_t;

/// LCG2-style job lifecycle, simplified to the states the paper's analysis
/// distinguishes: everything before Running is "overhead" (submission,
/// scheduling, queuing); Running is payload execution; transfers bracket it.
enum class JobState {
  kSubmitted,    // accepted by the user interface / resource broker
  kScheduled,    // matched to a computing element, in its batch queue
  kTransferringIn,
  kRunning,
  kTransferringOut,
  kDone,
  kFailed,       // exhausted retries
  kCancelled,
};

const char* to_string(JobState s);

/// One logical input file a job must stage in before running. When a
/// ReplicaCatalog is attached to the grid, per-file staging replaces the
/// aggregate `input_megabytes` cost: files replicated on the chosen CE's
/// close StorageElement are local, everything else pays the remote penalty.
struct DataStageRef {
  std::string logical_name;
  double megabytes = 0.0;
};

/// What the caller asks the grid to run. `compute_seconds` is wall time on a
/// reference worker node; actual duration scales with the node speed factor.
struct JobRequest {
  std::string name;
  double compute_seconds = 0.0;
  double input_megabytes = 0.0;
  double output_megabytes = 0.0;
  /// Per-file stage-in plan (data plane; empty = charge input_megabytes).
  std::vector<DataStageRef> input_refs;
  /// Matchmaking policy name for this job; empty = the grid's default.
  std::string matchmaking;
  /// CE names a placement policy wants this job steered away from
  /// (advisory — the broker ignores it rather than strand the job).
  std::vector<std::string> avoid_ces;
};

/// Full trace of one grid job, including every latency component. All times
/// are absolute simulation times in seconds; -1 marks "not reached".
struct JobRecord {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kSubmitted;
  std::string computing_element;
  int attempts = 0;  // 1 = succeeded first try

  double submit_time = -1;        // request accepted
  double match_time = -1;         // broker matched a CE (last attempt)
  double queue_exit_time = -1;    // left the CE batch queue (last attempt)
  double run_start_time = -1;     // payload began (after input transfer)
  double run_end_time = -1;       // payload finished
  double completion_time = -1;    // outputs registered, result visible

  double input_transfer_seconds = 0.0;
  double output_transfer_seconds = 0.0;

  /// Data plane (catalog attached): which StorageElement staged the data and
  /// how many megabytes moved, split by replica locality. Remote megabytes
  /// are pre-penalty sizes of the refs that had no close replica.
  std::string staging_element;
  double staged_in_megabytes = 0.0;
  double remote_input_megabytes = 0.0;

  /// Data routing split: megabytes that round-tripped through the
  /// orchestrator/UI link (centralized staging) vs megabytes pulled
  /// SE→SE from a peer replica (decentralized replication policies).
  double bytes_via_ui = 0.0;
  double bytes_peer = 0.0;
  /// Seconds spent waiting for and crossing the contended orchestrator
  /// link (already included in the input/output transfer seconds).
  double ui_transfer_seconds = 0.0;

  /// Storage-side fault trace (SE fault injection on): replicas that were
  /// lost/corrupt/unreachable while staging, how many inputs were served by
  /// a fallback replica, and — when every replica of an input was gone —
  /// the logical names the job could not stage. A non-empty lost_files on a
  /// kFailed record means retrying cannot help; only re-derivation can.
  int replica_faults = 0;
  int replica_failovers = 0;
  std::vector<std::string> lost_files;

  /// Total wall time from submission to completion.
  double total_seconds() const { return completion_time - submit_time; }
  /// Middleware latency of the (last) attempt: UI + broker submission +
  /// matchmaking, i.e. everything before the job reached a site.
  double middleware_seconds() const { return match_time - submit_time; }
  /// Queueing latency of the (last) attempt: residual middleware queues plus
  /// the site batch queue.
  double queue_seconds() const { return queue_exit_time - match_time; }
  /// Grid overhead: everything except payload compute and data transfers,
  /// accumulated over all attempts (failed attempts are pure overhead).
  double overhead_seconds() const {
    return total_seconds() - (run_end_time - run_start_time) -
           input_transfer_seconds - output_transfer_seconds;
  }
};

}  // namespace moteur::grid
