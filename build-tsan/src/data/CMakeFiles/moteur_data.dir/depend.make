# Empty dependencies file for moteur_data.
# This may be replaced when dependencies are built.
