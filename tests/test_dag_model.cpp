// The DAG generalization of the §3.5 model: predicted makespans must match
// the full enactor + deterministic grid EXACTLY on arbitrary dot-iteration
// DAGs with barriers — including the real Bronze-Standard topology, which
// the chain formulas cannot capture (its branches are not on the critical
// path).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "app/bronze_standard.hpp"
#include "data/dataset.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "model/dag.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workflow/patterns.hpp"

namespace moteur {
namespace {

double simulate(const workflow::Workflow& wf,
                const std::map<std::string, double>& service_seconds, std::size_t n_d,
                enactor::EnactmentPolicy policy, double overhead = 0.0) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::constant(overhead));
  enactor::SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  for (const auto* proc : wf.services()) {
    registry.add(services::make_simulated_service(
        proc->name, proc->input_ports, proc->output_ports,
        services::JobProfile{service_seconds.at(proc->name)}));
  }
  data::InputDataSet ds;
  for (const auto* source : wf.sources()) {
    for (std::size_t j = 0; j < n_d; ++j) {
      ds.add_item(source->name, "d" + std::to_string(j));
    }
  }
  enactor::Enactor moteur(backend, registry, policy);
  return moteur.run({.workflow = wf, .inputs = ds}).makespan();
}

void expect_all_policies_match(const workflow::Workflow& wf,
                               const std::map<std::string, double>& times,
                               std::size_t n_d) {
  const auto predicted = model::predict_dag_makespan(wf, times, n_d);
  EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::nop()),
                   predicted.sequential);
  EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::dp()),
                   predicted.dp);
  EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::sp()),
                   predicted.sp);
  EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::sp_dp()),
                   predicted.dsp);
}

TEST(DagModel, ChainReducesToPaperFormulas) {
  const auto wf = workflow::make_chain(4);
  const std::map<std::string, double> times{
      {"P0", 10.0}, {"P1", 10.0}, {"P2", 10.0}, {"P3", 10.0}};
  const auto predicted = model::predict_dag_makespan(wf, times, 6);
  EXPECT_DOUBLE_EQ(predicted.sequential, 4 * 6 * 10.0);
  EXPECT_DOUBLE_EQ(predicted.dp, 4 * 10.0);
  EXPECT_DOUBLE_EQ(predicted.sp, (6 + 4 - 1) * 10.0);
  EXPECT_DOUBLE_EQ(predicted.dsp, 4 * 10.0);
  expect_all_policies_match(wf, times, 6);
}

TEST(DagModel, FanOutBranchesOverlap) {
  const auto wf = workflow::make_fan_out(3);
  const std::map<std::string, double> times{
      {"P0", 10.0}, {"P1", 30.0}, {"P2", 20.0}, {"P3", 5.0}};
  const auto predicted = model::predict_dag_makespan(wf, times, 4);
  // DSP: longest path P0 -> P1.
  EXPECT_DOUBLE_EQ(predicted.dsp, 40.0);
  // NOP: P0 serial (4x10), then branches in parallel, each serial.
  EXPECT_DOUBLE_EQ(predicted.sequential, 40.0 + 4 * 30.0);
  expect_all_policies_match(wf, times, 4);
}

TEST(DagModel, BarrierCollapsesDownstreamCardinality) {
  workflow::Workflow wf("two-layers");
  wf.add_source("src");
  wf.add_processor("work", {"in"}, {"out"});
  auto& stats = wf.add_processor("stats", {"all"}, {"mean"});
  stats.synchronization = true;
  wf.add_processor("post", {"in"}, {"out"});
  wf.add_sink("sink");
  wf.link("src", "out", "work", "in");
  wf.link("work", "out", "stats", "all");
  wf.link("stats", "mean", "post", "in");
  wf.link("post", "out", "sink", "in");

  const std::map<std::string, double> times{{"work", 10.0}, {"stats", 7.0},
                                            {"post", 3.0}};
  const auto predicted = model::predict_dag_makespan(wf, times, 5);
  // DSP: all 5 work items in parallel (10), barrier (7), post once (3).
  EXPECT_DOUBLE_EQ(predicted.dsp, 20.0);
  // NOP: work serial (50), barrier (7), post (3).
  EXPECT_DOUBLE_EQ(predicted.sequential, 60.0);
  expect_all_policies_match(wf, times, 5);
}

TEST(DagModel, BronzeStandardTopologyExactly) {
  // The Figure-9 graph with per-service times from the default profiles; the
  // DAG model must reproduce the simulator exactly where the nW = 5 chain
  // formulas only approximate (they ignore Yasmina/Baladin branches).
  const auto wf = app::bronze_standard_workflow();
  const app::BronzeProfiles p;
  const std::map<std::string, double> times{
      {"crestLines", p.crest_lines_seconds},   {"crestMatch", p.crest_match_seconds},
      {"PFMatchICP", p.pf_match_icp_seconds},  {"PFRegister", p.pf_register_seconds},
      {"Yasmina", p.yasmina_seconds},          {"Baladin", p.baladin_seconds},
      {"MultiTransfoTest", p.multi_transfo_seconds}};

  // Transfers must be zero for exactness: rebuild simulated services with
  // compute only.
  for (const std::size_t n_d : {1u, 4u, 12u}) {
    const auto predicted = model::predict_dag_makespan(wf, times, n_d);
    EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::nop()),
                     predicted.sequential)
        << "nD=" << n_d;
    EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::dp()),
                     predicted.dp)
        << "nD=" << n_d;
    EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::sp()),
                     predicted.sp)
        << "nD=" << n_d;
    EXPECT_DOUBLE_EQ(simulate(wf, times, n_d, enactor::EnactmentPolicy::sp_dp()),
                     predicted.dsp)
        << "nD=" << n_d;
  }
}

TEST(DagModel, OverheadFoldsIntoServiceTimes) {
  // Constant grid overhead o shifts every T_P by o; predictions with the
  // shifted times match the simulation with real overhead.
  const auto wf = workflow::make_chain(3);
  const double overhead = 200.0;
  const std::map<std::string, double> compute{{"P0", 30.0}, {"P1", 60.0}, {"P2", 10.0}};
  std::map<std::string, double> shifted;
  for (const auto& [name, t] : compute) shifted[name] = t + overhead;

  const auto predicted = model::predict_dag_makespan(wf, shifted, 5);
  EXPECT_DOUBLE_EQ(
      simulate(wf, compute, 5, enactor::EnactmentPolicy::sp(), overhead),
      predicted.sp);
  EXPECT_DOUBLE_EQ(
      simulate(wf, compute, 5, enactor::EnactmentPolicy::sp_dp(), overhead),
      predicted.dsp);
}

TEST(DagModel, RejectsUnsupportedShapes) {
  const auto loop = workflow::make_optimization_loop();
  std::map<std::string, double> times{{"P1", 1.0}, {"P2", 1.0}, {"P3", 1.0}};
  EXPECT_THROW(model::predict_dag_makespan(loop, times, 2), GraphError);

  const auto cross = workflow::make_cross();
  EXPECT_THROW(model::predict_dag_makespan(cross, {{"P0", 1.0}}, 2), GraphError);

  const auto chain = workflow::make_chain(2);
  EXPECT_THROW(model::predict_dag_makespan(chain, {{"P0", 1.0}}, 2), InternalError);
}

// ---------------------------------------------------------------------------
// Randomized dot-DAGs: prediction == simulation for every policy.
// ---------------------------------------------------------------------------

struct RandomDag {
  workflow::Workflow workflow{"random-dag"};
  std::map<std::string, double> times;
};

RandomDag make_random_dag(Rng& rng, bool with_barrier) {
  RandomDag dag;
  dag.workflow.add_source("src");
  struct Out {
    std::string proc;
    std::string port;
    bool post_barrier;
  };
  std::vector<Out> available{{"src", "out", false}};
  std::set<std::string> consumed;

  const std::size_t services = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  bool barrier_placed = false;
  for (std::size_t i = 0; i < services; ++i) {
    const std::string name = "P" + std::to_string(i);
    const bool make_barrier = with_barrier && !barrier_placed &&
                              i >= services / 2;  // one barrier, mid-graph
    // Pick 1-2 feeds of homogeneous cardinality.
    const Out& first = available[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(available.size()) - 1))];
    std::vector<Out> feeds{first};
    if (!make_barrier && rng.bernoulli(0.4)) {
      // Second feed must share the cardinality class.
      std::vector<const Out*> candidates;
      for (const auto& out : available) {
        if (out.post_barrier == first.post_barrier &&
            !(out.proc == first.proc && out.port == first.port)) {
          candidates.push_back(&out);
        }
      }
      if (!candidates.empty()) {
        feeds.push_back(*candidates[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(candidates.size()) - 1))]);
      }
    }
    std::vector<std::string> ports;
    for (std::size_t f = 0; f < feeds.size(); ++f) {
      ports.push_back("in" + std::to_string(f));
    }
    auto& proc = dag.workflow.add_processor(name, ports, {"out"});
    if (make_barrier) {
      proc.synchronization = true;
      barrier_placed = true;
    }
    for (std::size_t f = 0; f < feeds.size(); ++f) {
      dag.workflow.link(feeds[f].proc, feeds[f].port, name, ports[f]);
      consumed.insert(feeds[f].proc + "." + feeds[f].port);
    }
    available.push_back(Out{name, "out", make_barrier || first.post_barrier});
    dag.times[name] = std::floor(rng.uniform(5.0, 60.0));
  }

  int sinks = 0;
  for (const auto& out : available) {
    if (consumed.count(out.proc + "." + out.port) == 0 && out.proc != "src") {
      const std::string sink = "sink" + std::to_string(sinks++);
      dag.workflow.add_sink(sink);
      dag.workflow.link(out.proc, out.port, sink, "in");
    }
  }
  if (sinks == 0) {
    dag.workflow.add_sink("sink0");
    dag.workflow.link(available.back().proc, "out", "sink0", "in");
  }
  dag.workflow.validate();
  return dag;
}

class RandomDagModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagModel, PredictionMatchesSimulationExactly) {
  Rng rng(GetParam());
  const RandomDag dag = make_random_dag(rng, /*with_barrier=*/GetParam() % 2 == 0);
  const std::size_t n_d = 1 + GetParam() % 7;
  expect_all_policies_match(dag.workflow, dag.times, n_d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagModel,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                           14, 15, 16));

}  // namespace
}  // namespace moteur
