#include "workflow/scufl.hpp"

#include <memory>

#include "util/error.hpp"
#include "workflow/iteration_tree.hpp"
#include "xml/xml.hpp"

namespace moteur::workflow {

namespace {

void write_iteration_node(xml::Node& parent, const IterationNode& node) {
  switch (node.kind) {
    case IterationNode::Kind::kPort:
      parent.add_child("port").set_attribute("name", node.port);
      return;
    case IterationNode::Kind::kDot:
    case IterationNode::Kind::kCross: {
      auto& element =
          parent.add_child(node.kind == IterationNode::Kind::kDot ? "dot" : "cross");
      for (const auto& child : node.children) write_iteration_node(element, child);
      return;
    }
  }
}

IterationNode read_iteration_node(const xml::Node& element) {
  if (element.name() == "port") {
    return IterationNode::leaf(element.required_attribute("name"));
  }
  MOTEUR_REQUIRE(element.name() == "dot" || element.name() == "cross", ParseError,
                 "unexpected element <" + element.name() + "> in iteration tree");
  std::vector<IterationNode> children;
  for (const auto& child : element.children()) {
    children.push_back(read_iteration_node(*child));
  }
  return element.name() == "dot" ? IterationNode::dot(std::move(children))
                                 : IterationNode::cross(std::move(children));
}

}  // namespace

std::string to_scufl(const Workflow& workflow) {
  auto root = std::make_unique<xml::Node>("workflow");
  root->set_attribute("name", workflow.name());

  for (const auto& p : workflow.processors()) {
    switch (p.kind) {
      case ProcessorKind::kSource:
        root->add_child("source").set_attribute("name", p.name);
        break;
      case ProcessorKind::kSink:
        root->add_child("sink").set_attribute("name", p.name);
        break;
      case ProcessorKind::kService: {
        auto& node = root->add_child("processor");
        node.set_attribute("name", p.name);
        if (!p.service_id.empty()) node.set_attribute("service", p.service_id);
        node.set_attribute("iteration", to_string(p.iteration));
        if (p.iteration_tree != nullptr) {
          write_iteration_node(node.add_child("iterationTree"), *p.iteration_tree);
        }
        if (p.synchronization) node.set_attribute("synchronization", "true");
        for (const auto& port : p.input_ports) {
          node.add_child("input").set_attribute("name", port);
        }
        for (const auto& port : p.output_ports) {
          node.add_child("output").set_attribute("name", port);
        }
        for (std::size_t i = 0; i < p.group_members.size(); ++i) {
          auto& member = node.add_child("member");
          member.set_attribute("name", p.group_members[i]);
          if (i < p.member_service_ids.size()) {
            member.set_attribute("service", p.member_service_ids[i]);
          }
        }
        for (const auto& il : p.internal_links) {
          auto& link = node.add_child("internalLink");
          link.set_attribute("fromMember", il.from_member);
          link.set_attribute("fromPort", il.from_port);
          link.set_attribute("toMember", il.to_member);
          link.set_attribute("toPort", il.to_port);
        }
        break;
      }
    }
  }

  for (const auto& l : workflow.links()) {
    auto& node = root->add_child("link");
    node.set_attribute("from", l.from_processor);
    node.set_attribute("fromPort", l.from_port);
    node.set_attribute("to", l.to_processor);
    node.set_attribute("toPort", l.to_port);
    if (l.feedback) node.set_attribute("feedback", "true");
  }

  for (const auto& c : workflow.coordination_constraints()) {
    auto& node = root->add_child("coordination");
    node.set_attribute("before", c.before);
    node.set_attribute("after", c.after);
  }

  return xml::Document(std::move(root)).to_string();
}

namespace {

bool parse_bool(const std::string& value, const std::string& context) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  throw ParseError("expected boolean for " + context + ", got '" + value + "'");
}

IterationStrategy parse_iteration(const std::string& value) {
  if (value == "dot") return IterationStrategy::kDot;
  if (value == "cross") return IterationStrategy::kCross;
  throw ParseError("unknown iteration strategy '" + value + "'");
}

}  // namespace

Workflow from_scufl(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  const xml::Node& root = doc.root();
  MOTEUR_REQUIRE(root.name() == "workflow", ParseError,
                 "expected <workflow> root, got <" + root.name() + ">");

  Workflow workflow(root.attribute("name").value_or("workflow"));

  for (const auto& child : root.children()) {
    if (child->name() == "source") {
      workflow.add_source(child->required_attribute("name"));
    } else if (child->name() == "sink") {
      workflow.add_sink(child->required_attribute("name"));
    } else if (child->name() == "processor") {
      Processor p;
      p.name = child->required_attribute("name");
      p.kind = ProcessorKind::kService;
      p.service_id = child->attribute("service").value_or("");
      if (const auto iteration = child->attribute("iteration")) {
        p.iteration = parse_iteration(*iteration);
      }
      if (const auto sync = child->attribute("synchronization")) {
        p.synchronization = parse_bool(*sync, "synchronization of '" + p.name + "'");
      }
      if (const xml::Node* tree = child->child("iterationTree")) {
        MOTEUR_REQUIRE(tree->children().size() == 1, ParseError,
                       "<iterationTree> must contain exactly one root combinator");
        p.iteration_tree = std::make_shared<const IterationNode>(
            read_iteration_node(*tree->children().front()));
      }
      for (const xml::Node* port : child->children_named("input")) {
        p.input_ports.push_back(port->required_attribute("name"));
      }
      for (const xml::Node* port : child->children_named("output")) {
        p.output_ports.push_back(port->required_attribute("name"));
      }
      for (const xml::Node* member : child->children_named("member")) {
        p.group_members.push_back(member->required_attribute("name"));
        p.member_service_ids.push_back(member->attribute("service").value_or(
            member->required_attribute("name")));
      }
      for (const xml::Node* il : child->children_named("internalLink")) {
        p.internal_links.push_back(InternalLink{
            il->required_attribute("fromMember"), il->required_attribute("fromPort"),
            il->required_attribute("toMember"), il->required_attribute("toPort")});
      }
      workflow.add_processor(std::move(p));
    } else if (child->name() == "link") {
      bool feedback = false;
      if (const auto flag = child->attribute("feedback")) {
        feedback = parse_bool(*flag, "feedback of a link");
      }
      workflow.link(child->required_attribute("from"),
                    child->required_attribute("fromPort"),
                    child->required_attribute("to"),
                    child->required_attribute("toPort"), feedback);
    } else if (child->name() == "coordination") {
      workflow.add_coordination_constraint(child->required_attribute("before"),
                                           child->required_attribute("after"));
    } else {
      throw ParseError("unexpected element <" + child->name() + "> in <workflow>");
    }
  }

  workflow.validate();
  return workflow;
}

}  // namespace moteur::workflow
