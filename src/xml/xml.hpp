#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace moteur::xml {

/// One element of an XML document tree. Owns its children. Attribute order
/// is preserved. Mixed content is supported in the limited form the MOTEUR
/// document formats need: each element has one text payload (the
/// concatenation of its character data) plus child elements.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view more) { text_.append(more); }

  // --- attributes -----------------------------------------------------
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  /// Set (or overwrite) an attribute.
  void set_attribute(const std::string& key, std::string value);
  bool has_attribute(const std::string& key) const;
  /// Value of an attribute, or std::nullopt if absent.
  std::optional<std::string> attribute(const std::string& key) const;
  /// Value of an attribute; throws ParseError naming the element if absent.
  const std::string& required_attribute(const std::string& key) const;

  // --- children -------------------------------------------------------
  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }
  Node& add_child(std::string name);
  /// Take ownership of an already-built subtree.
  Node& adopt(std::unique_ptr<Node> child);
  /// First child with the given element name, or nullptr.
  const Node* child(std::string_view name) const;
  /// First child with the given element name; throws ParseError if absent.
  const Node& required_child(std::string_view name) const;
  /// All children with the given element name, in document order.
  std::vector<const Node*> children_named(std::string_view name) const;

  /// Serialize the subtree rooted here as indented XML (no declaration).
  std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// An XML document: a declaration (ignored on parse) plus one root element.
class Document {
 public:
  explicit Document(std::unique_ptr<Node> root) : root_(std::move(root)) {}

  const Node& root() const { return *root_; }
  Node& root() { return *root_; }

  /// Transfer ownership of the root element (e.g. to graft it into another
  /// document). The Document must not be used afterwards.
  std::unique_ptr<Node> take_root() { return std::move(root_); }

  /// Serialize with declaration.
  std::string to_string() const;

 private:
  std::unique_ptr<Node> root_;
};

/// Parse an XML document. Supports: elements, attributes (single or double
/// quoted), character data, comments, processing instructions / declarations
/// (skipped), CDATA sections, and the five predefined entities plus numeric
/// character references (ASCII range). Throws ParseError with a line number
/// on malformed input.
Document parse(std::string_view input);

/// Escape the five predefined entities for use in character data.
std::string escape_text(std::string_view s);

/// Escape for use inside a double-quoted attribute value.
std::string escape_attribute(std::string_view s);

}  // namespace moteur::xml
