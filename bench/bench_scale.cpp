// E19 (scale extension) — the sharded enactment core at 10k-run scale.
//
// Thousands of tiny runs (a short chain of zero-work functional services,
// data-parallel over a small item set) are pushed through one RunService on
// a ThreadedBackend, sweeping the shard count. The per-invocation work is
// negligible by design, so the bottleneck is the enactment core itself —
// engine bookkeeping, completion dispatch, obs delivery — which is exactly
// what sharding parallelizes. Reported per shard count: wall time, runs/sec,
// throughput speedup over 1 shard, and the p99 run admission wait.
//
// The run always cross-checks itself: the per-shard counters (ShardStats)
// must sum to the totals reported by the run handles, or the exit status is
// non-zero. Throughput expectations (>= 3x at 4 shards) are only enforced
// under --assert-speedup, and only when the machine exposes at least as many
// cores as shards under test — N shard threads multiplexed onto one core do
// the same serial CPU work as one thread, so wall-clock speedup assertions
// are meaningless there (the smoke path in CI still cross-checks counters).
//
//   bench_scale [--runs N] [--items M] [--stages S] [--threads T]
//               [--max-active A] [--shards 1,2,4] [--out BENCH_scale.json]
//               [--assert-speedup]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "enactor/run_request.hpp"
#include "enactor/threaded_backend.hpp"
#include "service/run_service.hpp"
#include "services/functional_service.hpp"
#include "services/registry.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "workflow/graph.hpp"

// Global heap-allocation counter. The enactment core is supposed to stay off
// the allocator on its hot paths (dispatch, completion, closure passes), so the
// bench reports allocations per invocation alongside throughput — a regression
// here shows up even when wall time hides behind thread scheduling noise.
static std::atomic<std::uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace moteur;

struct Options {
  std::size_t runs = 2000;
  std::size_t items = 16;
  std::size_t stages = 4;
  std::size_t threads = 4;
  std::size_t max_active = 16;
  std::vector<std::size_t> shard_counts{1, 2, 4};
  std::string out = "BENCH_scale.json";
  bool assert_speedup = false;
};

struct Scenario {
  std::size_t shards_requested = 0;
  std::size_t shards_effective = 0;
  double seconds = 0.0;
  double runs_per_sec = 0.0;
  std::uint64_t handle_invocations = 0;  // summed over run handles
  std::uint64_t allocations = 0;         // heap allocations in the timed region
  double allocs_per_invocation = 0.0;
  double p99_admission_wait = 0.0;
  std::vector<service::ShardStats> shard_stats;
};

workflow::Workflow chain_workflow(std::size_t stages) {
  workflow::Workflow wf("scale-chain");
  wf.add_source("src");
  std::string prev = "src";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string name = "p" + std::to_string(i);
    wf.add_processor(name, {"in"}, {"out"});
    wf.link(prev, "out", name, "in");
    prev = name;
  }
  wf.add_sink("sink");
  wf.link(prev, "out", "sink", "in");
  return wf;
}

void register_zero_work_services(services::ServiceRegistry& registry,
                                 std::size_t stages) {
  for (std::size_t i = 0; i < stages; ++i) {
    // Pure and stateless: safe to invoke concurrently from every worker.
    registry.add(std::make_shared<services::FunctionalService>(
        "p" + std::to_string(i), std::vector<std::string>{"in"},
        std::vector<std::string>{"out"}, [](const services::Inputs&) {
          services::Result result;
          result.outputs["out"].payload = 0;
          result.outputs["out"].repr = "x";
          return result;
        }));
  }
}

data::InputDataSet item_set(std::size_t items) {
  data::InputDataSet ds;
  ds.declare_input("src");
  for (std::size_t j = 0; j < items; ++j) ds.add_item("src", "i" + std::to_string(j));
  return ds;
}

Scenario run_scenario(const Options& opt, std::size_t shards) {
  enactor::ThreadedBackend backend(opt.threads);
  services::ServiceRegistry registry;
  register_zero_work_services(registry, opt.stages);

  service::RunServiceConfig config;
  config.admission.max_active = opt.max_active;
  config.admission.max_inflight = 0;  // measure the core, not the gate
  config.sharding.shards = shards;
  config.defaults.policy = enactor::EnactmentPolicy::sp_dp();
  service::RunService runs(backend, registry, config);

  const workflow::Workflow wf = chain_workflow(opt.stages);
  const data::InputDataSet inputs = item_set(opt.items);
  std::vector<enactor::RunRequest> requests;
  requests.reserve(opt.runs);
  for (std::size_t i = 0; i < opt.runs; ++i) {
    enactor::RunRequest request;
    request.name = "r" + std::to_string(i);
    request.workflow = wf;
    request.inputs = inputs;
    requests.push_back(std::move(request));
  }

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  auto handles = runs.submit_all(std::move(requests));
  runs.wait_idle();
  const std::uint64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  Scenario s;
  s.shards_requested = shards;
  s.shards_effective = runs.shards();
  s.seconds = seconds;
  s.runs_per_sec = seconds > 0.0 ? static_cast<double>(opt.runs) / seconds : 0.0;
  s.allocations = allocs_after - allocs_before;
  for (const auto& handle : handles) {
    const enactor::EnactmentResult* result = handle.try_result();
    if (result == nullptr) {
      std::fprintf(stderr, "run %s not terminal after wait_idle\n", handle.id().c_str());
      std::exit(1);
    }
    s.handle_invocations += result->invocations();
  }
  if (s.handle_invocations > 0) {
    s.allocs_per_invocation =
        static_cast<double>(s.allocations) / static_cast<double>(s.handle_invocations);
  }
  s.shard_stats = runs.shard_stats();
  std::vector<double> waits;
  for (const auto& st : s.shard_stats) {
    waits.insert(waits.end(), st.admission_waits.begin(), st.admission_waits.end());
  }
  if (!waits.empty()) s.p99_admission_wait = percentile(std::move(waits), 99.0);
  return s;
}

/// The per-shard counters must sum to what the handles reported.
bool counters_consistent(const Options& opt, const Scenario& s) {
  std::uint64_t shard_runs = 0;
  std::uint64_t shard_invocations = 0;
  for (const auto& st : s.shard_stats) {
    shard_runs += st.runs;
    shard_invocations += st.invocations;
  }
  bool ok = true;
  if (shard_runs != opt.runs) {
    std::fprintf(stderr, "FAIL: shard run counters sum to %llu, expected %zu\n",
                 static_cast<unsigned long long>(shard_runs), opt.runs);
    ok = false;
  }
  if (shard_invocations != s.handle_invocations) {
    std::fprintf(stderr,
                 "FAIL: shard invocation counters sum to %llu, handles report %llu\n",
                 static_cast<unsigned long long>(shard_invocations),
                 static_cast<unsigned long long>(s.handle_invocations));
    ok = false;
  }
  return ok;
}

void write_json(const Options& opt, const std::vector<Scenario>& scenarios) {
  std::ofstream out(opt.out);
  out << "{\n  \"config\": {\"runs\": " << opt.runs << ", \"items\": " << opt.items
      << ", \"stages\": " << opt.stages << ", \"threads\": " << opt.threads
      << ", \"max_active\": " << opt.max_active
      << ", \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << "},\n  \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"shards\": " << s.shards_effective
        << ", \"seconds\": " << s.seconds << ", \"runs_per_sec\": " << s.runs_per_sec
        << ", \"invocations\": " << s.handle_invocations
        << ", \"allocations\": " << s.allocations
        << ", \"allocs_per_invocation\": " << s.allocs_per_invocation
        << ", \"p99_admission_wait_seconds\": " << s.p99_admission_wait
        << ",\n     \"shards_detail\": [";
    for (std::size_t k = 0; k < s.shard_stats.size(); ++k) {
      const auto& st = s.shard_stats[k];
      out << (k == 0 ? "" : ", ") << "{\"shard\": " << st.shard
          << ", \"runs\": " << st.runs << ", \"invocations\": " << st.invocations << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (key == "--runs") opt.runs = std::stoul(next());
    else if (key == "--items") opt.items = std::stoul(next());
    else if (key == "--stages") opt.stages = std::stoul(next());
    else if (key == "--threads") opt.threads = std::stoul(next());
    else if (key == "--max-active") opt.max_active = std::stoul(next());
    else if (key == "--out") opt.out = next();
    else if (key == "--assert-speedup") opt.assert_speedup = true;
    else if (key == "--shards") {
      opt.shard_counts.clear();
      for (const auto& part : split(next(), ',')) {
        opt.shard_counts.push_back(std::stoul(part));
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      std::exit(1);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  std::puts("===================================================================");
  std::printf("E19: sharded enactment core, %zu runs x %zu stages x %zu items\n",
              opt.runs, opt.stages, opt.items);
  std::printf("     threaded backend, %zu workers, max_active %zu\n", opt.threads,
              opt.max_active);
  std::puts("===================================================================");

  std::vector<Scenario> scenarios;
  bool ok = true;
  for (const std::size_t shards : opt.shard_counts) {
    Scenario s = run_scenario(opt, shards);
    ok &= counters_consistent(opt, s);
    std::printf(
        "shards %zu: %8.2f s  %9.1f runs/s  %10llu invocations  %6.1f allocs/inv  "
        "p99 wait %.3f s\n",
        s.shards_effective, s.seconds, s.runs_per_sec,
        static_cast<unsigned long long>(s.handle_invocations), s.allocs_per_invocation,
        s.p99_admission_wait);
    scenarios.push_back(std::move(s));
  }

  const Scenario* base = nullptr;
  for (const auto& s : scenarios) {
    if (s.shards_effective == 1) base = &s;
  }
  if (base != nullptr) {
    for (const auto& s : scenarios) {
      if (&s == base) continue;
      const double speedup = base->seconds > 0.0 ? base->seconds / s.seconds : 0.0;
      std::printf("speedup %zu shards vs 1: %.2fx (p99 wait %.3f s vs %.3f s)\n",
                  s.shards_effective, speedup, s.p99_admission_wait,
                  base->p99_admission_wait);
      if (opt.assert_speedup && s.shards_effective >= 4) {
        const std::size_t cores = std::thread::hardware_concurrency();
        if (cores < s.shards_effective) {
          std::printf(
              "  [SKIP] speedup assertion: %zu core(s) < %zu shards — no parallel "
              "hardware to measure\n",
              cores, s.shards_effective);
          continue;
        }
        const bool fast_enough = speedup >= 3.0;
        const bool wait_ok = s.p99_admission_wait <= base->p99_admission_wait * 1.10 ||
                             s.p99_admission_wait < 0.001;
        std::printf("  [%s] >= 3x runs/sec at %zu shards\n", fast_enough ? "PASS" : "FAIL",
                    s.shards_effective);
        std::printf("  [%s] p99 admission wait no worse\n", wait_ok ? "PASS" : "FAIL");
        ok &= fast_enough && wait_ok;
      }
    }
  }

  write_json(opt, scenarios);
  std::printf("results written to %s\n", opt.out.c_str());
  return ok ? 0 : 1;
}
