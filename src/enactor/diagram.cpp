#include "enactor/diagram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace moteur::enactor {

std::string render_execution_diagram(const Timeline& timeline,
                                     const std::vector<std::string>& row_order,
                                     const DiagramOptions& options) {
  const auto& traces = timeline.traces();
  if (traces.empty()) return "(empty timeline)\n";

  double t0 = traces.front().submit_time;
  double t1 = 0.0;
  double shortest = 0.0;
  for (const auto& trace : traces) {
    t0 = std::min(t0, trace.submit_time);
    t1 = std::max(t1, trace.end_time);
    const double span = trace.end_time - trace.submit_time;
    if (span > 0.0 && (shortest == 0.0 || span < shortest)) shortest = span;
  }

  double per_column = options.seconds_per_column;
  if (per_column <= 0.0) per_column = shortest > 0.0 ? shortest : 1.0;
  std::size_t columns =
      static_cast<std::size_t>(std::ceil((t1 - t0) / per_column - 1e-9));
  columns = std::max<std::size_t>(columns, 1);
  const bool truncated = columns > options.max_columns;
  columns = std::min(columns, options.max_columns);

  // Cell contents: labels of the data sets active in that time bin.
  std::vector<std::vector<std::string>> cells(row_order.size(),
                                              std::vector<std::string>(columns));
  for (std::size_t r = 0; r < row_order.size(); ++r) {
    for (const InvocationTrace* trace : timeline.for_processor(row_order[r])) {
      const auto first = static_cast<std::size_t>(
          std::max(0.0, std::floor((trace->submit_time - t0) / per_column + 1e-9)));
      auto last = static_cast<std::size_t>(
          std::ceil((trace->end_time - t0) / per_column - 1e-9));
      last = std::max(last, first + 1);
      const std::string label = trace->data_label();
      for (std::size_t c = first; c < std::min(last, columns); ++c) {
        std::string& cell = cells[r][c];
        if (!cell.empty()) cell += " ";
        cell += label;
      }
    }
  }

  // Column widths adapt to the widest cell.
  std::vector<std::size_t> widths(columns, 1);
  for (std::size_t c = 0; c < columns; ++c) {
    for (std::size_t r = 0; r < row_order.size(); ++r) {
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }

  std::size_t name_width = 0;
  for (const auto& name : row_order) name_width = std::max(name_width, name.size());

  std::ostringstream os;
  for (std::size_t r = 0; r < row_order.size(); ++r) {
    os << pad_right(row_order[r], name_width) << " |";
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = cells[r][c];
      os << ' ' << pad_right(cell.empty() ? "X" : cell, widths[c]) << " |";
    }
    if (truncated && r == 0) os << " ...";
    os << '\n';
  }
  os << pad_right("", name_width) << "  "
     << "(1 column = " << format_fixed(per_column, per_column < 10 ? 1 : 0)
     << " s, t0 = " << format_fixed(t0, 0) << " s)\n";
  return os.str();
}

std::string render_trace_table(const Timeline& timeline) {
  std::ostringstream os;
  os << pad_right("processor", 24) << pad_left("data", 10) << pad_left("submit", 12)
     << pad_left("start", 12) << pad_left("end", 12) << pad_left("span", 10)
     << pad_left("status", 12) << "  site\n";
  auto traces = timeline.traces();
  std::sort(traces.begin(), traces.end(),
            [](const InvocationTrace& a, const InvocationTrace& b) {
              return a.submit_time < b.submit_time;
            });
  for (const auto& trace : traces) {
    os << pad_right(trace.processor, 24) << pad_left(trace.data_label(), 10)
       << pad_left(format_fixed(trace.submit_time, 1), 12)
       << pad_left(format_fixed(trace.start_time, 1), 12)
       << pad_left(format_fixed(trace.end_time, 1), 12)
       << pad_left(format_fixed(trace.span_seconds(), 1), 10)
       << pad_left(to_string(trace.status), 12) << "  "
       << (trace.job ? trace.job->computing_element : std::string("-"))
       << (trace.failed ? "  FAILED" : "") << (trace.superseded ? "  superseded" : "")
       << '\n';
  }
  return os.str();
}

}  // namespace moteur::enactor
