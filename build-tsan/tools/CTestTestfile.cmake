# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_validate "/root/repo/build-tsan/tools/moteur_cli" "validate" "--workflow" "/root/repo/examples/data/bronze_workflow.xml" "--services" "/root/repo/examples/data/bronze_services.xml" "--nd" "12")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_manifest "/root/repo/build-tsan/tools/moteur_cli" "run" "--manifest" "/root/repo/examples/data/bronze_run.xml" "--services" "/root/repo/examples/data/bronze_services.xml")
set_tests_properties(cli_run_manifest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_documents "/root/repo/build-tsan/tools/moteur_cli" "run" "--workflow" "/root/repo/examples/data/quickstart_workflow.xml" "--data" "/root/repo/examples/data/quickstart_dataset.xml" "--services" "/root/repo/examples/data/quickstart_services.xml" "--policy" "SP+DP+JG" "--grid" "constant" "--overhead" "120")
set_tests_properties(cli_run_documents PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_model "/root/repo/build-tsan/tools/moteur_cli" "model" "--nw" "5" "--nd" "126" "--t" "600")
set_tests_properties(cli_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build-tsan/tools/moteur_cli" "frobnicate")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
