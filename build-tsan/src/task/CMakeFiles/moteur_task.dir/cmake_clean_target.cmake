file(REMOVE_RECURSE
  "libmoteur_task.a"
)
