#pragma once

#include <stdexcept>
#include <string>

namespace moteur {

/// Root of the library's exception hierarchy. All errors thrown by MOTEUR
/// modules derive from this type so callers can catch a single base.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input: bad XML, bad descriptor, bad workflow document.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Structural violation in a workflow graph (dangling link, port mismatch,
/// illegal cycle in a task graph, ...).
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error("graph error: " + what) {}
};

/// Violation of an enactment-time invariant (firing a processor whose inputs
/// are not ready, duplicate data identity, ...).
class EnactmentError : public Error {
 public:
  explicit EnactmentError(const std::string& what)
      : Error("enactment error: " + what) {}
};

/// Failure reported by the (simulated or real) execution infrastructure.
class ExecutionError : public Error {
 public:
  explicit ExecutionError(const std::string& what)
      : Error("execution error: " + what) {}
};

/// Internal consistency check. Indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

#define MOTEUR_REQUIRE(cond, exc_type, msg)     \
  do {                                          \
    if (!(cond)) throw exc_type(msg);           \
  } while (0)

}  // namespace moteur
