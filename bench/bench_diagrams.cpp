// E4 — Reproduces the execution diagrams of Figures 4, 5 and 6: the
// 3-service chain of Figure 1 run over data sets D0, D1, D2 under data
// parallelism only (Fig. 4), service parallelism only (Fig. 5), and the
// variable-time scenario with and without service parallelism (Fig. 6).
#include <cstdio>
#include <memory>

#include "data/dataset.hpp"
#include "enactor/diagram.hpp"
#include "enactor/enactor.hpp"
#include "enactor/sim_backend.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace moteur;

/// src -> P1 -> P2 -> P3 -> sink.
workflow::Workflow figure1_chain() {
  workflow::Workflow wf("figure1");
  wf.add_source("src");
  wf.add_processor("P1", {"in"}, {"out"});
  wf.add_processor("P2", {"in"}, {"out"});
  wf.add_processor("P3", {"in"}, {"out"});
  wf.add_sink("sink");
  wf.link("src", "out", "P1", "in");
  wf.link("P1", "out", "P2", "in");
  wf.link("P2", "out", "P3", "in");
  wf.link("P3", "out", "sink", "in");
  return wf;
}

/// Durations per (service, data): row i = Pi+1, column j = Dj.
using Times = std::vector<std::vector<double>>;

enactor::Timeline run(const Times& times, enactor::EnactmentPolicy policy) {
  sim::Simulator simulator;
  grid::Grid grid(simulator, grid::GridConfig::constant(0.0));
  enactor::SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto row = times[i];
    registry.add(std::make_shared<services::FunctionalService>(
        "P" + std::to_string(i + 1), std::vector<std::string>{"in"},
        std::vector<std::string>{"out"}, services::FunctionalService::InvokeFn{},
        [row, i](const services::Inputs& inputs) {
          grid::JobRequest request;
          request.name = "P" + std::to_string(i + 1);
          request.compute_seconds = row.at(inputs.at("in").indices().at(0));
          return request;
        }));
  }
  data::InputDataSet ds;
  for (int j = 0; j < 3; ++j) ds.add_item("src", "D" + std::to_string(j));
  enactor::Enactor moteur(backend, registry, policy);
  return moteur.run({.workflow = figure1_chain(), .inputs = ds}).timeline;
}

void show(const char* title, const Times& times, enactor::EnactmentPolicy policy) {
  std::printf("\n%s\n", title);
  const enactor::Timeline timeline = run(times, policy);
  enactor::DiagramOptions options;
  options.seconds_per_column = 1.0;
  std::fputs(
      enactor::render_execution_diagram(timeline, {"P3", "P2", "P1"}, options).c_str(),
      stdout);
  std::printf("  makespan: %.0f time units\n", timeline.makespan());
}

}  // namespace

int main() {
  std::puts("=============================================================");
  std::puts("E4: execution diagrams (Figures 4, 5, 6) — 3 services x 3 data");
  std::puts("    'X' marks idle cycles, as in the paper");
  std::puts("=============================================================");

  const Times constant{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}};
  show("Figure 4 — data parallelism only (DP): stages sweep all data at once",
       constant, enactor::EnactmentPolicy::dp());
  show("Figure 5 — service parallelism only (SP): the pipeline",
       constant, enactor::EnactmentPolicy::sp());

  // Figure 6: D0 takes twice as long on P1 (submitted twice after an error)
  // and D1 three times as long on P2 (blocked in a queue).
  const Times variable{{2, 1, 1}, {1, 3, 1}, {1, 1, 1}};
  show("Figure 6 (left) — variable times, DP without SP: stage barriers",
       variable, enactor::EnactmentPolicy::dp());
  show("Figure 6 (right) — variable times, DP with SP: computations overlap",
       variable, enactor::EnactmentPolicy::sp_dp());

  std::puts("\nAs in the paper, the right diagram finishes earlier than the");
  std::puts("left one: service parallelism improves performance beyond data");
  std::puts("parallelism once execution times are not constant.");
  return 0;
}
