#include "task/expansion.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"
#include "workflow/analysis.hpp"

namespace moteur::task {

namespace {

using data::IndexVector;
using workflow::IterationStrategy;
using workflow::Link;
using workflow::Processor;
using workflow::ProcessorKind;

/// A symbolically-propagated data item: its iteration index plus the tasks
/// that must complete before it exists.
struct SymbolicItem {
  IndexVector index;
  std::vector<std::string> producers;
};

using Stream = std::vector<SymbolicItem>;

std::string task_name(const std::string& processor, const IndexVector& index) {
  std::string name = processor;
  name += "(";
  for (std::size_t i = 0; i < index.size(); ++i) {
    if (i != 0) name += ",";
    name += std::to_string(index[i]);
  }
  name += ")";
  return name;
}

void check_no_feedback(const workflow::Workflow& workflow) {
  for (const Link& link : workflow.links()) {
    MOTEUR_REQUIRE(!link.feedback, GraphError,
                   "task-based expansion cannot express the loop through '" +
                       link.from_processor +
                       "' -> '" + link.to_processor +
                       "': the number of iterations is only known at execution time");
  }
}

/// Tuples produced by the iteration strategy over per-port streams.
std::vector<SymbolicItem> iterate(IterationStrategy strategy,
                                  const std::vector<Stream>& port_streams) {
  std::vector<SymbolicItem> tuples;
  if (port_streams.empty()) return tuples;

  if (strategy == IterationStrategy::kDot) {
    // Group by equal index across every port.
    std::map<IndexVector, std::pair<std::size_t, std::vector<std::string>>> partial;
    for (const auto& stream : port_streams) {
      for (const auto& item : stream) {
        auto& entry = partial[item.index];
        ++entry.first;
        entry.second.insert(entry.second.end(), item.producers.begin(),
                            item.producers.end());
      }
    }
    for (auto& [index, entry] : partial) {
      if (entry.first == port_streams.size()) {
        tuples.push_back(SymbolicItem{index, std::move(entry.second)});
      }
    }
    return tuples;
  }

  // Cross: Cartesian product, indices concatenated in port order.
  tuples.push_back(SymbolicItem{{}, {}});
  for (const auto& stream : port_streams) {
    std::vector<SymbolicItem> next;
    next.reserve(tuples.size() * stream.size());
    for (const auto& tuple : tuples) {
      for (const auto& item : stream) {
        SymbolicItem combined = tuple;
        combined.index.insert(combined.index.end(), item.index.begin(), item.index.end());
        combined.producers.insert(combined.producers.end(), item.producers.begin(),
                                  item.producers.end());
        next.push_back(std::move(combined));
      }
    }
    tuples = std::move(next);
  }
  return tuples;
}

std::vector<std::string> dedupe(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace

TaskGraph expand(const workflow::Workflow& workflow, const data::InputDataSet& inputs,
                 services::ServiceRegistry& registry) {
  workflow.validate();
  check_no_feedback(workflow);

  TaskGraph graph;
  std::map<std::string, Stream> output_streams;  // per processor

  for (const auto& name : workflow::topological_order(workflow)) {
    const Processor& proc = workflow.processor(name);
    switch (proc.kind) {
      case ProcessorKind::kSource: {
        MOTEUR_REQUIRE(inputs.has_input(name), GraphError,
                       "data set provides no items for source '" + name + "'");
        Stream stream;
        const std::size_t count = inputs.items(name).size();
        for (std::size_t j = 0; j < count; ++j) {
          stream.push_back(SymbolicItem{IndexVector{j}, {}});
        }
        output_streams.emplace(name, std::move(stream));
        break;
      }
      case ProcessorKind::kSink:
        break;
      case ProcessorKind::kService: {
        // Assemble per-port streams (union over inlets).
        std::vector<Stream> port_streams;
        for (const auto& port : proc.input_ports) {
          Stream merged;
          for (const Link* link : workflow.links_into_port(proc.name, port)) {
            const auto& upstream = output_streams.at(link->from_processor);
            merged.insert(merged.end(), upstream.begin(), upstream.end());
          }
          port_streams.push_back(std::move(merged));
        }

        const grid::JobRequest profile =
            registry.resolve(proc)->job_profile(services::Inputs{});

        Stream produced;
        if (proc.synchronization) {
          // One task gated on every producing task of every input stream.
          std::vector<std::string> deps;
          for (const auto& stream : port_streams) {
            for (const auto& item : stream) {
              deps.insert(deps.end(), item.producers.begin(), item.producers.end());
            }
          }
          Task task;
          task.name = task_name(proc.name, {});
          task.job = profile;
          task.job.name = task.name;
          task.dependencies = dedupe(std::move(deps));
          graph.add_task(std::move(task));
          produced.push_back(SymbolicItem{{}, {task_name(proc.name, {})}});
        } else {
          for (auto& tuple : iterate(proc.iteration, port_streams)) {
            Task task;
            task.name = task_name(proc.name, tuple.index);
            task.job = profile;
            task.job.name = task.name;
            task.dependencies = dedupe(std::move(tuple.producers));
            graph.add_task(std::move(task));
            produced.push_back(SymbolicItem{tuple.index, {task_name(proc.name, tuple.index)}});
          }
        }
        output_streams.emplace(proc.name, std::move(produced));
        break;
      }
    }
  }
  graph.validate();
  return graph;
}

std::size_t expansion_size(const workflow::Workflow& workflow,
                           const data::InputDataSet& inputs) {
  workflow.validate();
  check_no_feedback(workflow);

  // Cardinality-only propagation: dot = min over ports, cross = product.
  std::map<std::string, double> cardinality;
  double total = 0.0;
  for (const auto& name : workflow::topological_order(workflow)) {
    const Processor& proc = workflow.processor(name);
    if (proc.kind == ProcessorKind::kSource) {
      cardinality[name] =
          inputs.has_input(name) ? static_cast<double>(inputs.items(name).size()) : 0.0;
      continue;
    }
    if (proc.kind == ProcessorKind::kSink) continue;

    double count;
    if (proc.synchronization) {
      count = 1.0;
    } else {
      count = proc.iteration == IterationStrategy::kCross ? 1.0 : -1.0;
      for (const auto& port : proc.input_ports) {
        double port_count = 0.0;
        for (const Link* link : workflow.links_into_port(proc.name, port)) {
          port_count += cardinality.at(link->from_processor);
        }
        if (proc.iteration == IterationStrategy::kCross) {
          count *= port_count;
        } else {
          count = count < 0.0 ? port_count : std::min(count, port_count);
        }
      }
      if (count < 0.0) count = 0.0;
    }
    cardinality[name] = count;
    total += count;
  }
  constexpr double kMax = 1e18;
  return total >= kMax ? static_cast<std::size_t>(kMax)
                       : static_cast<std::size_t>(total);
}

}  // namespace moteur::task
