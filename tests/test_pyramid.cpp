// Multiresolution extension: downsampling and coarse-to-fine Yasmina.
#include <gtest/gtest.h>

#include <cmath>

#include "registration/algorithms.hpp"
#include "registration/phantom.hpp"
#include "util/rng.hpp"

namespace moteur::registration {
namespace {

constexpr double kDeg = M_PI / 180.0;

TEST(Downsample, HalvesDimensionsDoublesSpacing) {
  Rng rng(3);
  PhantomOptions options;
  options.size = 24;
  options.spacing = 1.0;
  const Image3D image = make_phantom(rng, options);
  const Image3D half = image.downsampled();
  EXPECT_EQ(half.nx(), 12u);
  EXPECT_EQ(half.ny(), 12u);
  EXPECT_EQ(half.nz(), 12u);
  EXPECT_DOUBLE_EQ(half.spacing(), 2.0);
  // World extent is (approximately) preserved.
  EXPECT_NEAR(half.extent().x, image.extent().x, 2.0 * image.spacing());
}

TEST(Downsample, BlockAveragePreservesMeanApproximately) {
  Rng rng(4);
  PhantomOptions options;
  options.size = 16;
  const Image3D image = make_phantom(rng, options);
  const Image3D half = image.downsampled();
  EXPECT_NEAR(half.mean_value(), image.mean_value(), 0.05 * std::fabs(image.mean_value()) + 0.01);
}

TEST(Downsample, WorldSamplingStaysConsistent) {
  Rng rng(5);
  PhantomOptions options;
  options.size = 32;
  options.noise_stddev = 0.0;
  const Image3D image = make_phantom(rng, options);
  const Image3D half = image.downsampled();
  // Smooth phantom: interior samples agree between levels.
  const Vec3 p = image.extent() * 0.5;
  EXPECT_NEAR(half.sample(p), image.sample(p), 0.1 * std::fabs(image.sample(p)) + 0.02);
}

TEST(Pyramid, RecoversLargerMotionsThanFlatYasmina) {
  // A motion outside flat Yasmina's capture range (steps start at 1 mm /
  // 0.02 rad): the pyramid's coarse level brings it back.
  Rng rng(6);
  PhantomOptions options;
  options.size = 32;
  options.noise_stddev = 0.005;
  options.max_rotation_radians = 0.22;   // ~12.6 deg
  options.max_translation = 6.0;         // mm
  const Image3D anatomy = make_phantom(rng, options);
  const ImagePair pair = make_pair(anatomy, rng, "big-motion", options);

  PyramidOptions pyramid;
  pyramid.levels = 2;
  pyramid.per_level.max_iterations = 60;
  const RegistrationResult coarse_to_fine =
      yasmina_pyramid(pair.reference, pair.floating, RigidTransform::identity(), pyramid);
  const TransformError pyramid_error =
      transform_error(coarse_to_fine.transform, pair.truth);

  EXPECT_LT(pyramid_error.translation, 3.0);
  EXPECT_LT(pyramid_error.rotation_radians / kDeg, 6.5);

  YasminaOptions flat;
  flat.max_iterations = 40;
  const RegistrationResult direct =
      yasmina(pair.reference, pair.floating, RigidTransform::identity(), flat);
  const TransformError flat_error = transform_error(direct.transform, pair.truth);
  // The pyramid should do at least as well as (usually much better than)
  // the flat optimizer on large motions.
  EXPECT_LE(pyramid_error.translation, flat_error.translation + 0.25);
}

TEST(Pyramid, ZeroLevelsEqualsFlatYasmina) {
  Rng rng(7);
  PhantomOptions options;
  options.size = 24;
  const Image3D anatomy = make_phantom(rng, options);
  const ImagePair pair = make_pair(anatomy, rng, "p", options);

  PyramidOptions pyramid;
  pyramid.levels = 0;
  const auto via_pyramid =
      yasmina_pyramid(pair.reference, pair.floating, RigidTransform::identity(), pyramid);
  const auto direct = yasmina(pair.reference, pair.floating, RigidTransform::identity(),
                              pyramid.per_level);
  const TransformError diff = transform_error(via_pyramid.transform, direct.transform);
  EXPECT_NEAR(diff.translation, 0.0, 1e-12);
  EXPECT_NEAR(diff.rotation_radians, 0.0, 1e-12);
}

}  // namespace
}  // namespace moteur::registration
