#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "data/token.hpp"

namespace moteur::enactor {

/// Structured account of everything a partial-result run lost: which input
/// tuples died (and where, and why), which downstream invocations were
/// skipped because they consumed poisoned tokens, and how many poisoned
/// tokens reached each sink. Empty for a clean run.
struct FailureReport {
  /// A tuple that failed definitively at a processor (retries exhausted).
  struct LostTuple {
    std::string processor;      // where the invocation failed
    data::IndexVector indices;  // iteration index of the lost tuple
    std::string status;         // final outcome status ("Transient", ...)
    std::string cause;          // backend error text
    /// Input files no replica of which survived ("DataLost" losses after
    /// recovery was exhausted or disabled); empty for every other status.
    std::vector<std::string> files;
  };

  /// A downstream invocation skipped because an input token was poisoned.
  struct SkippedInvocation {
    std::string processor;         // the skipped processor
    data::IndexVector indices;     // iteration index of the skipped tuple
    std::string origin_processor;  // where the root failure happened
    std::string cause;             // root-cause error text
  };

  std::vector<LostTuple> lost;
  std::vector<SkippedInvocation> skipped;
  /// Poisoned tokens that reached each sink, i.e. final outputs lost.
  std::map<std::string, std::size_t> poisoned_at_sink;

  bool empty() const { return lost.empty() && skipped.empty() && poisoned_at_sink.empty(); }

  /// JSON document: {"lost":[...],"skipped":[...],"poisonedAtSink":{...}}.
  std::string to_json() const;
  /// Short human-readable summary for CLI output.
  std::string to_text() const;
};

}  // namespace moteur::enactor
