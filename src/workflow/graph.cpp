#include "workflow/graph.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "workflow/iteration_tree.hpp"

namespace moteur::workflow {

const char* to_string(IterationStrategy s) {
  switch (s) {
    case IterationStrategy::kDot: return "dot";
    case IterationStrategy::kCross: return "cross";
  }
  return "?";
}

const char* to_string(ProcessorKind k) {
  switch (k) {
    case ProcessorKind::kSource: return "source";
    case ProcessorKind::kSink: return "sink";
    case ProcessorKind::kService: return "service";
  }
  return "?";
}

bool Processor::has_input_port(const std::string& port) const {
  return std::find(input_ports.begin(), input_ports.end(), port) != input_ports.end();
}

bool Processor::has_output_port(const std::string& port) const {
  return std::find(output_ports.begin(), output_ports.end(), port) != output_ports.end();
}

Processor& Workflow::insert(Processor processor) {
  MOTEUR_REQUIRE(!has_processor(processor.name), GraphError,
                 "duplicate processor name '" + processor.name + "'");
  processors_.push_back(std::move(processor));
  return processors_.back();
}

Processor& Workflow::add_source(const std::string& name) {
  Processor p;
  p.name = name;
  p.kind = ProcessorKind::kSource;
  p.output_ports = {"out"};
  return insert(std::move(p));
}

Processor& Workflow::add_sink(const std::string& name) {
  Processor p;
  p.name = name;
  p.kind = ProcessorKind::kSink;
  p.input_ports = {"in"};
  return insert(std::move(p));
}

Processor& Workflow::add_processor(const std::string& name,
                                   std::vector<std::string> input_ports,
                                   std::vector<std::string> output_ports,
                                   IterationStrategy iteration) {
  Processor p;
  p.name = name;
  p.kind = ProcessorKind::kService;
  p.input_ports = std::move(input_ports);
  p.output_ports = std::move(output_ports);
  p.iteration = iteration;
  return insert(std::move(p));
}

Processor& Workflow::add_processor(Processor processor) { return insert(std::move(processor)); }

void Workflow::remove_processor(const std::string& name) {
  MOTEUR_REQUIRE(has_processor(name), GraphError,
                 "cannot remove unknown processor '" + name + "'");
  std::erase_if(processors_, [&](const Processor& p) { return p.name == name; });
  std::erase_if(links_, [&](const Link& l) {
    return l.from_processor == name || l.to_processor == name;
  });
  std::erase_if(constraints_, [&](const CoordinationConstraint& c) {
    return c.before == name || c.after == name;
  });
}

void Workflow::link(const std::string& from_processor, const std::string& from_port,
                    const std::string& to_processor, const std::string& to_port,
                    bool feedback) {
  const Processor& from = processor(from_processor);
  const Processor& to = processor(to_processor);
  MOTEUR_REQUIRE(from.has_output_port(from_port), GraphError,
                 "processor '" + from_processor + "' has no output port '" + from_port + "'");
  MOTEUR_REQUIRE(to.has_input_port(to_port), GraphError,
                 "processor '" + to_processor + "' has no input port '" + to_port + "'");
  links_.push_back(Link{from_processor, from_port, to_processor, to_port, feedback});
}

void Workflow::add_coordination_constraint(const std::string& before,
                                           const std::string& after) {
  MOTEUR_REQUIRE(has_processor(before), GraphError,
                 "coordination constraint references unknown processor '" + before + "'");
  MOTEUR_REQUIRE(has_processor(after), GraphError,
                 "coordination constraint references unknown processor '" + after + "'");
  constraints_.push_back(CoordinationConstraint{before, after});
}

bool Workflow::has_processor(const std::string& name) const {
  return std::any_of(processors_.begin(), processors_.end(),
                     [&](const Processor& p) { return p.name == name; });
}

const Processor& Workflow::processor(const std::string& name) const {
  for (const auto& p : processors_) {
    if (p.name == name) return p;
  }
  throw GraphError("unknown processor '" + name + "'");
}

Processor& Workflow::processor(const std::string& name) {
  for (auto& p : processors_) {
    if (p.name == name) return p;
  }
  throw GraphError("unknown processor '" + name + "'");
}

namespace {
std::vector<const Processor*> filter(const std::vector<Processor>& all, ProcessorKind kind) {
  std::vector<const Processor*> out;
  for (const auto& p : all) {
    if (p.kind == kind) out.push_back(&p);
  }
  return out;
}
}  // namespace

std::vector<const Processor*> Workflow::sources() const {
  return filter(processors_, ProcessorKind::kSource);
}

std::vector<const Processor*> Workflow::sinks() const {
  return filter(processors_, ProcessorKind::kSink);
}

std::vector<const Processor*> Workflow::services() const {
  return filter(processors_, ProcessorKind::kService);
}

std::vector<const Link*> Workflow::links_into_port(const std::string& processor,
                                                   const std::string& port) const {
  std::vector<const Link*> out;
  for (const auto& l : links_) {
    if (l.to_processor == processor && l.to_port == port) out.push_back(&l);
  }
  return out;
}

std::vector<const Link*> Workflow::links_into(const std::string& processor) const {
  std::vector<const Link*> out;
  for (const auto& l : links_) {
    if (l.to_processor == processor) out.push_back(&l);
  }
  return out;
}

std::vector<const Link*> Workflow::links_out_of(const std::string& processor) const {
  std::vector<const Link*> out;
  for (const auto& l : links_) {
    if (l.from_processor == processor) out.push_back(&l);
  }
  return out;
}

void Workflow::validate() const {
  // Kind-specific shape.
  for (const auto& p : processors_) {
    MOTEUR_REQUIRE(!p.name.empty(), GraphError, "processor with empty name");
    if (p.kind == ProcessorKind::kSource) {
      MOTEUR_REQUIRE(p.input_ports.empty(), GraphError,
                     "source '" + p.name + "' must not have input ports");
      MOTEUR_REQUIRE(!p.output_ports.empty(), GraphError,
                     "source '" + p.name + "' must have an output port");
    }
    if (p.kind == ProcessorKind::kSink) {
      MOTEUR_REQUIRE(p.output_ports.empty(), GraphError,
                     "sink '" + p.name + "' must not have output ports");
      MOTEUR_REQUIRE(!p.input_ports.empty(), GraphError,
                     "sink '" + p.name + "' must have an input port");
    }
    if (p.kind == ProcessorKind::kService) {
      MOTEUR_REQUIRE(!p.input_ports.empty(), GraphError,
                     "service '" + p.name + "' has no input ports");
    }
    std::set<std::string> seen;
    for (const auto& port : p.input_ports) {
      MOTEUR_REQUIRE(seen.insert("i:" + port).second, GraphError,
                     "duplicate input port '" + port + "' on '" + p.name + "'");
    }
    for (const auto& port : p.output_ports) {
      MOTEUR_REQUIRE(seen.insert("o:" + port).second, GraphError,
                     "duplicate output port '" + port + "' on '" + p.name + "'");
    }
    if (p.iteration_tree != nullptr) {
      p.iteration_tree->validate();
      const auto tree_ports = p.iteration_tree->ports();
      const std::set<std::string> covered(tree_ports.begin(), tree_ports.end());
      const std::set<std::string> declared(p.input_ports.begin(), p.input_ports.end());
      MOTEUR_REQUIRE(covered == declared, GraphError,
                     "iteration tree of '" + p.name +
                         "' must cover every input port exactly once");
    }
  }

  // Every input port of every non-source processor is fed by some link.
  for (const auto& p : processors_) {
    for (const auto& port : p.input_ports) {
      MOTEUR_REQUIRE(!links_into_port(p.name, port).empty(), GraphError,
                     "input port '" + p.name + "." + port + "' is not connected");
    }
  }

  // Graph minus feedback links must be acyclic (Kahn's algorithm).
  std::map<std::string, std::size_t> in_degree;
  for (const auto& p : processors_) in_degree[p.name] = 0;
  for (const auto& l : links_) {
    if (!l.feedback) ++in_degree[l.to_processor];
  }
  for (const auto& c : constraints_) ++in_degree[c.after];

  std::vector<std::string> frontier;
  for (const auto& [name, degree] : in_degree) {
    if (degree == 0) frontier.push_back(name);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::string current = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const auto& l : links_) {
      if (!l.feedback && l.from_processor == current && --in_degree[l.to_processor] == 0) {
        frontier.push_back(l.to_processor);
      }
    }
    for (const auto& c : constraints_) {
      if (c.before == current && --in_degree[c.after] == 0) frontier.push_back(c.after);
    }
  }
  MOTEUR_REQUIRE(visited == processors_.size(), GraphError,
                 "workflow contains a cycle not marked as feedback");
}

}  // namespace moteur::workflow
