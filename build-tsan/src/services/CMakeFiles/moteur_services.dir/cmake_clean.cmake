file(REMOVE_RECURSE
  "CMakeFiles/moteur_services.dir/catalog.cpp.o"
  "CMakeFiles/moteur_services.dir/catalog.cpp.o.d"
  "CMakeFiles/moteur_services.dir/descriptor.cpp.o"
  "CMakeFiles/moteur_services.dir/descriptor.cpp.o.d"
  "CMakeFiles/moteur_services.dir/functional_service.cpp.o"
  "CMakeFiles/moteur_services.dir/functional_service.cpp.o.d"
  "CMakeFiles/moteur_services.dir/grouped_service.cpp.o"
  "CMakeFiles/moteur_services.dir/grouped_service.cpp.o.d"
  "CMakeFiles/moteur_services.dir/registry.cpp.o"
  "CMakeFiles/moteur_services.dir/registry.cpp.o.d"
  "CMakeFiles/moteur_services.dir/service.cpp.o"
  "CMakeFiles/moteur_services.dir/service.cpp.o.d"
  "CMakeFiles/moteur_services.dir/wrapper_service.cpp.o"
  "CMakeFiles/moteur_services.dir/wrapper_service.cpp.o.d"
  "libmoteur_services.a"
  "libmoteur_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moteur_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
