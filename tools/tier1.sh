#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the full test suite.
#
#   tools/tier1.sh          build + ctest (the ROADMAP tier-1 command)
#   tools/tier1.sh --tsan   additionally rebuild the enactor-labelled tests
#                           under -fsanitize=thread and run them
#                           (ThreadedBackend races surface here)
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${1:-}" = "--tsan" ]; then
  echo "== TSan stage: enactor/retry tests under -fsanitize=thread =="
  cmake -B build-tsan -S . -DMOTEUR_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target test_enactor test_enactor_edge test_progress test_retry
  (cd build-tsan && ctest --output-on-failure -L enactor)
fi
