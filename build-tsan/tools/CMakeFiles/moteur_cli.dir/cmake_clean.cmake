file(REMOVE_RECURSE
  "CMakeFiles/moteur_cli.dir/moteur_cli.cpp.o"
  "CMakeFiles/moteur_cli.dir/moteur_cli.cpp.o.d"
  "moteur_cli"
  "moteur_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moteur_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
