# Empty compiler generated dependencies file for test_patterns_tools.
# This may be replaced when dependencies are built.
