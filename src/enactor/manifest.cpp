#include "enactor/manifest.hpp"

#include <memory>

#include "policy/registry.hpp"
#include "util/error.hpp"
#include "workflow/scufl.hpp"

namespace moteur::enactor {

grid::GridConfig RunManifest::make_grid_config() const {
  grid::GridConfig config;
  if (grid_preset == "egee2006") {
    config = grid::GridConfig::egee2006(seed);
  } else if (grid_preset == "cluster") {
    config = grid::GridConfig::dedicated_cluster(cluster_nodes, seed);
  } else if (grid_preset == "constant") {
    config = grid::GridConfig::constant(constant_overhead_seconds, 4096, seed);
  } else {
    throw ParseError("unknown grid preset '" + grid_preset +
                     "' (expected egee2006 | cluster | constant)");
  }
  config.orchestrator_bandwidth_mbps = orchestrator_bandwidth_mbps;
  if (!policy.replication.empty()) config.replication_policy = policy.replication;
  return config;
}

void write_policy(xml::Node& node, const EnactmentPolicy& policy) {
  node.set_attribute("config", policy.name());
  if (policy.data_parallelism_cap != 0) {
    node.set_attribute("cap", std::to_string(policy.data_parallelism_cap));
  }
  if (policy.batch_size != 1) {
    node.set_attribute("batch", std::to_string(policy.batch_size));
  }
  if (policy.adaptive_batching) {
    node.set_attribute("adaptiveBatching", "true");
    node.set_attribute("overheadFractionTarget",
                       std::to_string(policy.overhead_fraction_target));
    node.set_attribute("maxBatch", std::to_string(policy.max_batch));
  }
  if (policy.retry.retries_enabled()) {
    node.set_attribute("retryAttempts", std::to_string(policy.retry.max_attempts));
    if (policy.retry.timeout_multiplier > 0.0) {
      node.set_attribute("retryTimeoutMultiplier",
                         std::to_string(policy.retry.timeout_multiplier));
      node.set_attribute("retryTimeoutMinSamples",
                         std::to_string(policy.retry.timeout_min_samples));
    }
    if (policy.retry.backoff_initial_seconds > 0.0) {
      node.set_attribute("retryBackoffInitial",
                         std::to_string(policy.retry.backoff_initial_seconds));
      node.set_attribute("retryBackoffFactor",
                         std::to_string(policy.retry.backoff_factor));
    }
  }
  if (policy.failure_policy != FailurePolicy::kFailFast) {
    node.set_attribute("failurePolicy", to_string(policy.failure_policy));
  }
  if (policy.breaker.enabled) {
    node.set_attribute("breakerWindow", std::to_string(policy.breaker.window));
    node.set_attribute("breakerThreshold", std::to_string(policy.breaker.threshold));
    node.set_attribute("breakerCooldown", std::to_string(policy.breaker.cooldown_seconds));
  }
  if (policy.cache) node.set_attribute("cache", "true");
  if (policy.data_aware) node.set_attribute("dataAware", "true");
  if (!policy.matchmaking.empty()) node.set_attribute("matchmaking", policy.matchmaking);
  if (!policy.placement.empty()) node.set_attribute("placement", policy.placement);
  if (!policy.replica_policy.empty()) {
    node.set_attribute("replicaPolicy", policy.replica_policy);
  }
  if (!policy.admission.empty()) node.set_attribute("admission", policy.admission);
  if (!policy.replication.empty()) {
    node.set_attribute("replication", policy.replication);
  }
}

EnactmentPolicy read_policy(const xml::Node& node) {
  EnactmentPolicy policy = EnactmentPolicy::parse(node.attribute("config").value_or("NOP"));
  if (const auto cap = node.attribute("cap")) {
    policy.data_parallelism_cap = static_cast<std::size_t>(std::stoul(*cap));
  }
  if (const auto batch = node.attribute("batch")) {
    policy.batch_size = static_cast<std::size_t>(std::stoul(*batch));
    MOTEUR_REQUIRE(policy.batch_size >= 1, ParseError, "batch must be >= 1");
  }
  if (const auto adaptive = node.attribute("adaptiveBatching")) {
    policy.adaptive_batching = *adaptive == "true" || *adaptive == "1";
  }
  if (const auto fraction = node.attribute("overheadFractionTarget")) {
    policy.overhead_fraction_target = std::stod(*fraction);
  }
  if (const auto max_batch = node.attribute("maxBatch")) {
    policy.max_batch = static_cast<std::size_t>(std::stoul(*max_batch));
  }
  if (const auto attempts = node.attribute("retryAttempts")) {
    policy.retry.max_attempts = static_cast<std::size_t>(std::stoul(*attempts));
    MOTEUR_REQUIRE(policy.retry.max_attempts >= 1, ParseError,
                   "retryAttempts must be >= 1");
  }
  if (const auto multiplier = node.attribute("retryTimeoutMultiplier")) {
    policy.retry.timeout_multiplier = std::stod(*multiplier);
  }
  if (const auto samples = node.attribute("retryTimeoutMinSamples")) {
    policy.retry.timeout_min_samples = static_cast<std::size_t>(std::stoul(*samples));
  }
  if (const auto initial = node.attribute("retryBackoffInitial")) {
    policy.retry.backoff_initial_seconds = std::stod(*initial);
  }
  if (const auto factor = node.attribute("retryBackoffFactor")) {
    policy.retry.backoff_factor = std::stod(*factor);
  }
  if (const auto failure = node.attribute("failurePolicy")) {
    policy.failure_policy = parse_failure_policy(*failure);
  }
  if (const auto cache = node.attribute("cache")) {
    policy.cache = *cache == "true" || *cache == "1";
  }
  if (const auto aware = node.attribute("dataAware")) {
    policy.data_aware = *aware == "true" || *aware == "1";
  }
  const policy::PolicyRegistry& registry = policy::PolicyRegistry::instance();
  if (const auto matchmaking = node.attribute("matchmaking")) {
    policy.matchmaking =
        registry.check_matchmaking(*matchmaking, "policy matchmaking attribute");
  }
  if (const auto placement = node.attribute("placement")) {
    policy.placement = registry.check_placement(*placement, "policy placement attribute");
  }
  if (const auto replica = node.attribute("replicaPolicy")) {
    policy.replica_policy =
        registry.check_replica(*replica, "policy replicaPolicy attribute");
  }
  if (const auto admission = node.attribute("admission")) {
    policy.admission =
        registry.check_admission(*admission, "policy admission attribute");
  }
  if (const auto replication = node.attribute("replication")) {
    policy.replication =
        registry.check_replication(*replication, "policy replication attribute");
  }
  if (const auto window = node.attribute("breakerWindow")) {
    policy.breaker.enabled = true;
    policy.breaker.window = static_cast<std::size_t>(std::stoul(*window));
    MOTEUR_REQUIRE(policy.breaker.window >= 1, ParseError, "breakerWindow must be >= 1");
  }
  if (const auto threshold = node.attribute("breakerThreshold")) {
    policy.breaker.enabled = true;
    policy.breaker.threshold = static_cast<std::size_t>(std::stoul(*threshold));
    MOTEUR_REQUIRE(policy.breaker.threshold >= 1, ParseError,
                   "breakerThreshold must be >= 1");
  }
  if (const auto cooldown = node.attribute("breakerCooldown")) {
    policy.breaker.enabled = true;
    policy.breaker.cooldown_seconds = std::stod(*cooldown);
  }
  return policy;
}

std::string RunManifest::to_xml() const {
  auto root = std::make_unique<xml::Node>("run");

  auto& policy_node = root->add_child("policy");
  write_policy(policy_node, policy);

  auto& grid_node = root->add_child("grid");
  grid_node.set_attribute("preset", grid_preset);
  grid_node.set_attribute("seed", std::to_string(seed));
  if (grid_preset == "constant") {
    grid_node.set_attribute("overhead", std::to_string(constant_overhead_seconds));
  }
  if (grid_preset == "cluster") {
    grid_node.set_attribute("nodes", std::to_string(cluster_nodes));
  }
  if (orchestrator_bandwidth_mbps > 0.0) {
    grid_node.set_attribute("orchestratorBw", std::to_string(orchestrator_bandwidth_mbps));
  }

  if (shards != 1 || pin_policy != "hash") {
    auto& service_node = root->add_child("service");
    service_node.set_attribute("shards", std::to_string(shards));
    service_node.set_attribute("pinPolicy", pin_policy);
  }

  // Embed the workflow and data-set documents (their roots become children).
  root->adopt(xml::parse(workflow::to_scufl(workflow)).take_root());
  root->adopt(xml::parse(inputs.to_xml()).take_root());
  return xml::Document(std::move(root)).to_string();
}

RunManifest RunManifest::from_xml(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  MOTEUR_REQUIRE(doc.root().name() == "run", ParseError,
                 "expected <run> root, got <" + doc.root().name() + ">");
  RunManifest manifest;
  if (const xml::Node* policy_node = doc.root().child("policy")) {
    manifest.policy = read_policy(*policy_node);
  }
  if (const xml::Node* grid_node = doc.root().child("grid")) {
    manifest.grid_preset = grid_node->attribute("preset").value_or("egee2006");
    if (const auto seed = grid_node->attribute("seed")) {
      manifest.seed = std::stoull(*seed);
    }
    if (const auto overhead = grid_node->attribute("overhead")) {
      manifest.constant_overhead_seconds = std::stod(*overhead);
    }
    if (const auto nodes = grid_node->attribute("nodes")) {
      manifest.cluster_nodes = static_cast<std::size_t>(std::stoul(*nodes));
    }
    if (const auto bw = grid_node->attribute("orchestratorBw")) {
      manifest.orchestrator_bandwidth_mbps = std::stod(*bw);
      MOTEUR_REQUIRE(manifest.orchestrator_bandwidth_mbps >= 0.0, ParseError,
                     "orchestratorBw must be >= 0");
    }
  }
  if (const xml::Node* service_node = doc.root().child("service")) {
    if (const auto shards = service_node->attribute("shards")) {
      manifest.shards = static_cast<std::size_t>(std::stoul(*shards));
      MOTEUR_REQUIRE(manifest.shards >= 1, ParseError, "shards must be >= 1");
    }
    if (const auto pin = service_node->attribute("pinPolicy")) {
      MOTEUR_REQUIRE(*pin == "hash" || *pin == "least-loaded", ParseError,
                     "pinPolicy must be hash | least-loaded");
      manifest.pin_policy = *pin;
    }
  }
  const xml::Node& wf_node = doc.root().required_child("workflow");
  manifest.workflow = workflow::from_scufl(wf_node.to_string());
  const xml::Node& ds_node = doc.root().required_child("dataset");
  manifest.inputs = data::InputDataSet::from_xml(ds_node.to_string());
  // Validate the preset eagerly so malformed manifests fail at load time.
  manifest.make_grid_config();
  return manifest;
}

}  // namespace moteur::enactor
