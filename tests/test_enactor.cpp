#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "data/dataset.hpp"
#include "enactor/diagram.hpp"
#include "enactor/enactor.hpp"
#include "enactor/policy.hpp"
#include "enactor/sim_backend.hpp"
#include "enactor/threaded_backend.hpp"
#include "grid/grid.hpp"
#include "services/functional_service.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace moteur::enactor {
namespace {

using services::FunctionalService;
using services::Inputs;
using services::JobProfile;
using services::Result;
using workflow::Workflow;

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

TEST(Policy, NamesMatchPaperConfigurations) {
  EXPECT_EQ(EnactmentPolicy::nop().name(), "NOP");
  EXPECT_EQ(EnactmentPolicy::jg().name(), "JG");
  EXPECT_EQ(EnactmentPolicy::sp().name(), "SP");
  EXPECT_EQ(EnactmentPolicy::dp().name(), "DP");
  EXPECT_EQ(EnactmentPolicy::sp_dp().name(), "SP+DP");
  EXPECT_EQ(EnactmentPolicy::sp_dp_jg().name(), "SP+DP+JG");
}

TEST(Policy, ParseRoundTrip) {
  for (const char* name : {"NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"}) {
    EXPECT_EQ(EnactmentPolicy::parse(name).name(), name);
  }
  EXPECT_THROW(EnactmentPolicy::parse("XX"), ParseError);
}

TEST(Policy, ServiceCapacity) {
  EXPECT_EQ(EnactmentPolicy::nop().service_capacity(), 1u);
  EXPECT_GT(EnactmentPolicy::dp().service_capacity(), 1000000u);
  EnactmentPolicy capped = EnactmentPolicy::dp();
  capped.data_parallelism_cap = 8;
  EXPECT_EQ(capped.service_capacity(), 8u);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Linear chain: src -> P0 -> P1 -> ... -> sink, every service "in" -> "out".
Workflow chain_workflow(std::size_t n_services) {
  Workflow wf("chain");
  wf.add_source("src");
  std::string previous = "src";
  std::string previous_port = "out";
  for (std::size_t i = 0; i < n_services; ++i) {
    const std::string name = "P" + std::to_string(i);
    wf.add_processor(name, {"in"}, {"out"});
    wf.link(previous, previous_port, name, "in");
    previous = name;
    previous_port = "out";
  }
  wf.add_sink("sink");
  wf.link(previous, previous_port, "sink", "in");
  return wf;
}

data::InputDataSet items(const std::string& source, std::size_t count) {
  data::InputDataSet ds;
  ds.declare_input(source);
  for (std::size_t j = 0; j < count; ++j) {
    ds.add_item(source, "item" + std::to_string(j));
  }
  return ds;
}

void register_chain_services(services::ServiceRegistry& registry, std::size_t n_services,
                             double compute_seconds) {
  for (std::size_t i = 0; i < n_services; ++i) {
    registry.add(services::make_simulated_service("P" + std::to_string(i), {"in"},
                                                  {"out"},
                                                  JobProfile{compute_seconds, 0.0, 0.0}));
  }
}

struct SimRig {
  sim::Simulator simulator;
  grid::Grid grid;
  SimGridBackend backend;
  services::ServiceRegistry registry;

  explicit SimRig(double overhead = 0.0)
      : grid(simulator, grid::GridConfig::constant(overhead)), backend(grid) {}

  EnactmentResult run(const Workflow& wf, const data::InputDataSet& ds,
                      EnactmentPolicy policy) {
    Enactor enactor(backend, registry, policy);
    return enactor.run({.workflow = wf, .inputs = ds});
  }
};

// ---------------------------------------------------------------------------
// Engine basics on the simulated backend
// ---------------------------------------------------------------------------

TEST(Enactor, ChainProducesOneSinkTokenPerInput) {
  SimRig rig;
  register_chain_services(rig.registry, 3, 10.0);
  const auto result = rig.run(chain_workflow(3), items("src", 4),
                              EnactmentPolicy::sp_dp());
  ASSERT_EQ(result.sink_outputs.at("sink").size(), 4u);
  EXPECT_EQ(result.invocations(), 12u);
  EXPECT_EQ(result.submissions(), 12u);
  EXPECT_EQ(result.failures(), 0u);
}

TEST(Enactor, SinkTokensSortedByIndexWithFullProvenance) {
  SimRig rig;
  register_chain_services(rig.registry, 2, 5.0);
  const auto result = rig.run(chain_workflow(2), items("src", 3),
                              EnactmentPolicy::sp_dp());
  const auto& tokens = result.sink_outputs.at("sink");
  ASSERT_EQ(tokens.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(tokens[j].indices(), (data::IndexVector{j}));
    // Full history tree: P1.out(P0.out(src[j])).
    EXPECT_EQ(tokens[j].id(),
              "P1.out(P0.out(src[" + std::to_string(j) + "]))");
    EXPECT_EQ(tokens[j].provenance()->depth(), 2u);
  }
}

TEST(Enactor, WorkflowParallelismRunsBranchesConcurrently) {
  // Figure 1: P2 and P3 are independent and run in parallel even under NOP.
  SimRig rig;
  for (const char* name : {"P1", "P2", "P3"}) {
    rig.registry.add(
        services::make_simulated_service(name, {"in"}, {"out"}, JobProfile{100.0}));
  }
  Workflow wf("fig1");
  wf.add_source("src");
  wf.add_processor("P1", {"in"}, {"out"});
  wf.add_processor("P2", {"in"}, {"out"});
  wf.add_processor("P3", {"in"}, {"out"});
  wf.add_sink("sink");
  wf.link("src", "out", "P1", "in");
  wf.link("P1", "out", "P2", "in");
  wf.link("P1", "out", "P3", "in");
  wf.link("P2", "out", "sink", "in");
  wf.link("P3", "out", "sink", "in");

  const auto result = rig.run(wf, items("src", 1), EnactmentPolicy::nop());
  // P1 then {P2 || P3}: 200, not 300.
  EXPECT_DOUBLE_EQ(result.makespan(), 200.0);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), 2u);
}

TEST(Enactor, DataParallelismCapThrottlesConcurrency) {
  SimRig rig;
  register_chain_services(rig.registry, 1, 100.0);
  EnactmentPolicy policy = EnactmentPolicy::sp_dp();
  policy.data_parallelism_cap = 2;
  const auto result = rig.run(chain_workflow(1), items("src", 6), policy);
  // 6 jobs of 100 s with concurrency 2: three waves.
  EXPECT_DOUBLE_EQ(result.makespan(), 300.0);
}

TEST(Enactor, CoordinationConstraintDelaysService) {
  SimRig rig;
  for (const char* name : {"A", "B"}) {
    rig.registry.add(
        services::make_simulated_service(name, {"in"}, {"out"}, JobProfile{50.0}));
  }
  Workflow wf("coord");
  wf.add_source("src");
  wf.add_processor("A", {"in"}, {"out"});
  wf.add_processor("B", {"in"}, {"out"});
  wf.add_sink("sa");
  wf.add_sink("sb");
  wf.link("src", "out", "A", "in");
  wf.link("src", "out", "B", "in");
  wf.link("A", "out", "sa", "in");
  wf.link("B", "out", "sb", "in");
  wf.add_coordination_constraint("A", "B");  // B waits for A though no data dep

  const auto result = rig.run(wf, items("src", 1), EnactmentPolicy::sp_dp());
  const auto a = result.timeline.for_processor("A");
  const auto b = result.timeline.for_processor("B");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_GE(b[0]->submit_time, a[0]->end_time);
}

TEST(Enactor, SynchronizationBarrierSeesWholeStream) {
  SimRig rig;
  rig.registry.add(
      services::make_simulated_service("work", {"in"}, {"out"}, JobProfile{10.0}));

  std::atomic<std::size_t> seen{0};
  rig.registry.add(std::make_shared<FunctionalService>(
      "stats", std::vector<std::string>{"values"}, std::vector<std::string>{"mean"},
      [&seen](const Inputs& in) {
        const auto& tokens = in.at("values").as<std::vector<data::Token>>();
        seen = tokens.size();
        Result r;
        r.outputs["mean"] = services::OutputValue{0.0, "mean"};
        return r;
      },
      JobProfile{5.0}));

  Workflow wf("sync");
  wf.add_source("src");
  wf.add_processor("work", {"in"}, {"out"});
  auto& stats = wf.add_processor("stats", {"values"}, {"mean"});
  stats.synchronization = true;
  wf.add_sink("sink");
  wf.link("src", "out", "work", "in");
  wf.link("work", "out", "stats", "values");
  wf.link("stats", "mean", "sink", "in");

  // The barrier must fire exactly once, after all 5 work invocations. The
  // simulated backend synthesizes outputs, so use the threaded backend to
  // observe the real aggregate; here check the timeline on the sim backend.
  const auto result = rig.run(wf, items("src", 5), EnactmentPolicy::sp_dp());
  const auto barrier_traces = result.timeline.for_processor("stats");
  ASSERT_EQ(barrier_traces.size(), 1u);
  for (const auto* work_trace : result.timeline.for_processor("work")) {
    EXPECT_GE(barrier_traces[0]->submit_time, work_trace->end_time);
  }
  ASSERT_EQ(result.sink_outputs.at("sink").size(), 1u);
  EXPECT_TRUE(result.sink_outputs.at("sink")[0].indices().empty());
}

TEST(Enactor, FailedJobsAreCountedAndStreamsShrink) {
  sim::Simulator simulator;
  auto config = grid::GridConfig::egee2006(3);
  config.failure_probability = 1.0;  // every attempt fails
  config.max_attempts = 2;
  config.background_jobs_per_hour = 0.0;
  grid::Grid grid(simulator, config);
  SimGridBackend backend(grid);
  services::ServiceRegistry registry;
  register_chain_services(registry, 2, 10.0);

  Enactor enactor(backend, registry, EnactmentPolicy::sp_dp());
  const auto result =
      enactor.run({.workflow = chain_workflow(2), .inputs = items("src", 3)});
  EXPECT_EQ(result.failures(), 3u);       // every P0 invocation dies
  EXPECT_EQ(result.invocations(), 0u);    // nothing succeeded
  EXPECT_TRUE(result.sink_outputs.at("sink").empty());
}

TEST(Enactor, MissingServiceBindingThrows) {
  SimRig rig;  // registry left empty
  EXPECT_THROW(rig.run(chain_workflow(1), items("src", 1), EnactmentPolicy::sp_dp()),
               EnactmentError);
}

TEST(Enactor, MissingSourceItemsThrow) {
  SimRig rig;
  register_chain_services(rig.registry, 1, 1.0);
  EXPECT_THROW(rig.run(chain_workflow(1), items("other", 1), EnactmentPolicy::sp_dp()),
               EnactmentError);
}

TEST(Enactor, PortMismatchBetweenProcessorAndServiceThrows) {
  SimRig rig;
  rig.registry.add(
      services::make_simulated_service("P0", {"different"}, {"out"}, JobProfile{1.0}));
  EXPECT_THROW(rig.run(chain_workflow(1), items("src", 1), EnactmentPolicy::sp_dp()),
               EnactmentError);
}

TEST(Enactor, EmptyInputProducesEmptyRun) {
  SimRig rig;
  register_chain_services(rig.registry, 2, 1.0);
  const auto result = rig.run(chain_workflow(2), items("src", 0),
                              EnactmentPolicy::sp_dp());
  EXPECT_EQ(result.invocations(), 0u);
  EXPECT_TRUE(result.sink_outputs.at("sink").empty());
  EXPECT_DOUBLE_EQ(result.makespan(), 0.0);
}

// ---------------------------------------------------------------------------
// Optimization loop (Figure 2): impossible task-based, enacted here
// ---------------------------------------------------------------------------

TEST(Enactor, OptimizationLoopConvergesViaFeedbackLink) {
  SimRig rig;
  rig.registry.add(services::make_simulated_service("P1", {"in"}, {"out"}, JobProfile{1.0}));

  // P2 increments a counter payload; P3 routes to "loop" until the counter
  // reaches 3, then to "exit" — the iteration count is only known at
  // execution time (§2.1).
  rig.registry.add(std::make_shared<FunctionalService>(
      "P2", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs& in) {
        const int count = in.at("in").holds<int>() ? in.at("in").as<int>() : 0;
        Result r;
        r.outputs["out"] = services::OutputValue{count + 1, std::to_string(count + 1)};
        return r;
      },
      JobProfile{1.0}));
  rig.registry.add(std::make_shared<FunctionalService>(
      "P3", std::vector<std::string>{"in"}, std::vector<std::string>{"loop", "exit"},
      [](const Inputs& in) {
        const int count = in.at("in").as<int>();
        Result r;
        const char* port = count >= 3 ? "exit" : "loop";
        r.outputs[port] = services::OutputValue{count, std::to_string(count)};
        return r;
      },
      JobProfile{1.0}));

  Workflow wf("fig2");
  wf.add_source("Source");
  wf.add_processor("P1", {"in"}, {"out"});
  wf.add_processor("P2", {"in"}, {"out"});
  wf.add_processor("P3", {"in"}, {"loop", "exit"});
  wf.add_sink("Sink");
  wf.link("Source", "out", "P1", "in");
  wf.link("P1", "out", "P2", "in");
  wf.link("P2", "out", "P3", "in");
  wf.link("P3", "loop", "P2", "in", /*feedback=*/true);
  wf.link("P3", "exit", "Sink", "in");

  // Real computation is needed for the conditional routing: use the
  // threaded backend.
  ThreadedBackend backend(4);
  Enactor enactor(backend, rig.registry, EnactmentPolicy::sp_dp());
  const auto result = enactor.run({.workflow = wf, .inputs = items("Source", 1)});
  ASSERT_EQ(result.sink_outputs.at("Sink").size(), 1u);
  EXPECT_EQ(result.sink_outputs.at("Sink")[0].as<int>(), 3);
  // P2 ran 3 times (initial + 2 loop iterations), P3 ran 3 times.
  EXPECT_EQ(result.timeline.for_processor("P2").size(), 3u);
  EXPECT_EQ(result.timeline.for_processor("P3").size(), 3u);
}

// ---------------------------------------------------------------------------
// Threaded backend: real computation end to end
// ---------------------------------------------------------------------------

TEST(ThreadedBackendTest, ComputesRealValuesThroughAChain) {
  services::ServiceRegistry registry;
  registry.add(std::make_shared<FunctionalService>(
      "P0", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs& in) {
        const int v = std::stoi(in.at("in").as<std::string>());
        Result r;
        r.outputs["out"] = services::OutputValue{v * v, std::to_string(v * v)};
        return r;
      }));
  registry.add(std::make_shared<FunctionalService>(
      "P1", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs& in) {
        const int v = in.at("in").as<int>();
        Result r;
        r.outputs["out"] = services::OutputValue{v + 1, std::to_string(v + 1)};
        return r;
      }));

  data::InputDataSet ds;
  for (int j = 0; j < 8; ++j) ds.add_item("src", std::to_string(j));

  ThreadedBackend backend(4);
  Enactor enactor(backend, registry, EnactmentPolicy::sp_dp());
  const auto result = enactor.run({.workflow = chain_workflow(2), .inputs = ds});
  const auto& tokens = result.sink_outputs.at("sink");
  ASSERT_EQ(tokens.size(), 8u);
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(tokens[static_cast<std::size_t>(j)].as<int>(), j * j + 1);
  }
}

TEST(ThreadedBackendTest, ServiceExceptionBecomesCountedFailure) {
  services::ServiceRegistry registry;
  registry.add(std::make_shared<FunctionalService>(
      "P0", std::vector<std::string>{"in"}, std::vector<std::string>{"out"},
      [](const Inputs& in) -> Result {
        if (in.at("in").as<std::string>() == "item1") {
          throw std::runtime_error("synthetic service fault");
        }
        Result r;
        r.outputs["out"] = services::OutputValue{1, "ok"};
        return r;
      }));
  ThreadedBackend backend(2);
  Enactor enactor(backend, registry, EnactmentPolicy::sp_dp());
  const auto result =
      enactor.run({.workflow = chain_workflow(1), .inputs = items("src", 3)});
  EXPECT_EQ(result.failures(), 1u);
  EXPECT_EQ(result.sink_outputs.at("sink").size(), 2u);
}

// ---------------------------------------------------------------------------
// Diagram rendering
// ---------------------------------------------------------------------------

TEST(Diagram, RendersRowsAndIdleCells) {
  SimRig rig;
  register_chain_services(rig.registry, 3, 100.0);
  const auto result = rig.run(chain_workflow(3), items("src", 3),
                              EnactmentPolicy::sp());
  const std::string diagram = render_execution_diagram(
      result.timeline, {"P2", "P1", "P0"}, DiagramOptions{100.0, 40});
  EXPECT_NE(diagram.find("P0"), std::string::npos);
  EXPECT_NE(diagram.find("D0"), std::string::npos);
  EXPECT_NE(diagram.find("X"), std::string::npos);  // idle cells
  const std::string table = render_trace_table(result.timeline);
  EXPECT_NE(table.find("processor"), std::string::npos);
  EXPECT_NE(table.find("P1"), std::string::npos);
}

}  // namespace
}  // namespace moteur::enactor
