# Empty compiler generated dependencies file for wrapper_service.
# This may be replaced when dependencies are built.
