#include "grid/background_load.hpp"

#include "grid/resource_broker.hpp"
#include "util/error.hpp"

namespace moteur::grid {

BackgroundLoad::BackgroundLoad(sim::Simulator& simulator, ResourceBroker& broker,
                               double jobs_per_hour, double mean_duration_seconds,
                               double horizon_seconds, const Rng& base)
    : simulator_(simulator),
      broker_(broker),
      mean_interarrival_(3600.0 / jobs_per_hour),
      mean_duration_(mean_duration_seconds),
      horizon_(horizon_seconds),
      rng_(base.fork("background")) {
  MOTEUR_REQUIRE(jobs_per_hour > 0.0, InternalError, "BackgroundLoad: rate must be > 0");
  schedule_next();
}

void BackgroundLoad::schedule_next() {
  const double gap = rng_.exponential(mean_interarrival_);
  if (simulator_.now() + gap > horizon_) return;
  simulator_.schedule(gap, [this] {
    const double duration = rng_.exponential(mean_duration_);
    broker_.match().occupy_slot(duration);
    ++generated_;
    schedule_next();
  });
}

}  // namespace moteur::grid
