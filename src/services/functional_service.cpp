#include "services/functional_service.hpp"

#include <memory>

#include "util/error.hpp"

namespace moteur::services {

namespace {

FunctionalService::ProfileFn fixed_profile(std::string id, JobProfile profile) {
  return [id = std::move(id), profile](const Inputs&) {
    grid::JobRequest request;
    request.name = id;
    request.compute_seconds = profile.compute_seconds;
    request.input_megabytes = profile.input_megabytes;
    request.output_megabytes = profile.output_megabytes;
    return request;
  };
}

}  // namespace

FunctionalService::FunctionalService(std::string id, std::vector<std::string> input_ports,
                                     std::vector<std::string> output_ports,
                                     InvokeFn invoke, JobProfile profile)
    : Service(std::move(id)),
      input_ports_(std::move(input_ports)),
      output_ports_(std::move(output_ports)),
      invoke_(std::move(invoke)),
      profile_(fixed_profile(this->id(), profile)) {}

FunctionalService::FunctionalService(std::string id, std::vector<std::string> input_ports,
                                     std::vector<std::string> output_ports,
                                     InvokeFn invoke, ProfileFn profile)
    : Service(std::move(id)),
      input_ports_(std::move(input_ports)),
      output_ports_(std::move(output_ports)),
      invoke_(std::move(invoke)),
      profile_(std::move(profile)) {}

Result FunctionalService::invoke(const Inputs& inputs) {
  // Pure-simulation services (no callable bound) degrade to symbolic
  // outputs so the threaded backend can still enact them.
  if (invoke_ == nullptr) return synthesize_outputs(inputs);
  return invoke_(inputs);
}

grid::JobRequest FunctionalService::job_profile(const Inputs& inputs) const {
  return profile_(inputs);
}

std::shared_ptr<FunctionalService> make_simulated_service(
    std::string id, std::vector<std::string> input_ports,
    std::vector<std::string> output_ports, JobProfile profile) {
  // The invoke path of a pure-simulation service mirrors synthesize_outputs
  // so the threaded backend can still run it (producing symbolic results).
  auto service = std::make_shared<FunctionalService>(
      std::move(id), std::move(input_ports), std::move(output_ports),
      FunctionalService::InvokeFn{}, profile);
  return service;
}

}  // namespace moteur::services
