file(REMOVE_RECURSE
  "CMakeFiles/bench_taskbased.dir/bench_taskbased.cpp.o"
  "CMakeFiles/bench_taskbased.dir/bench_taskbased.cpp.o.d"
  "bench_taskbased"
  "bench_taskbased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taskbased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
