#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "grid/grid.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace moteur::grid {
namespace {

JobRequest job(const std::string& name, double compute, double in_mb = 0.0,
               double out_mb = 0.0) {
  JobRequest r;
  r.name = name;
  r.compute_seconds = compute;
  r.input_megabytes = in_mb;
  r.output_megabytes = out_mb;
  return r;
}

TEST(LatencyModel, Means) {
  EXPECT_DOUBLE_EQ(LatencyModel::constant_of(30.0).mean(), 30.0);
  EXPECT_DOUBLE_EQ(LatencyModel::uniform(10.0, 20.0).mean(), 15.0);
  // Lognormal mean = median * exp(sigma^2 / 2).
  EXPECT_NEAR(LatencyModel::lognormal(100.0, 0.5).mean(), 100.0 * std::exp(0.125), 1e-9);
  const auto mix = LatencyModel::lognormal_mixture(100.0, 0.5, 0.1, 3.0);
  EXPECT_NEAR(mix.mean(), 0.9 * 100.0 * std::exp(0.125) + 0.1 * 300.0 * std::exp(0.125),
              1e-9);
}

TEST(GridConstant, JobTimeIsExactlyOverheadPlusCompute) {
  sim::Simulator sim;
  Grid grid(sim, GridConfig::constant(600.0));
  double total = -1;
  grid.submit(job("j", 120.0), [&](const JobRecord& r) {
    EXPECT_EQ(r.state, JobState::kDone);
    total = r.total_seconds();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(total, 720.0);
}

TEST(GridConstant, ManyParallelJobsSeeNoContention) {
  // The ideal grid has enough slots and broker concurrency that N
  // simultaneous submissions all complete at overhead + compute.
  sim::Simulator sim;
  Grid grid(sim, GridConfig::constant(100.0));
  std::vector<double> completions;
  for (int i = 0; i < 200; ++i) {
    grid.submit(job("j" + std::to_string(i), 50.0),
                [&](const JobRecord& r) { completions.push_back(r.completion_time); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 200u);
  for (double t : completions) EXPECT_DOUBLE_EQ(t, 150.0);
}

TEST(GridConstant, OverheadAccountingSeparatesComputeAndTransfers) {
  auto config = GridConfig::constant(300.0);
  config.transfer_latency_seconds = 5.0;
  config.transfer_bandwidth_mb_per_s = 2.0;
  sim::Simulator sim;
  Grid grid(sim, config);
  JobRecord record;
  grid.submit(job("j", 60.0, 8.0, 2.0), [&](const JobRecord& r) { record = r; });
  sim.run();
  EXPECT_EQ(record.state, JobState::kDone);
  // in: 5 + 8/2 = 9s, out: 5 + 2/2 = 6s.
  EXPECT_DOUBLE_EQ(record.input_transfer_seconds, 9.0);
  EXPECT_DOUBLE_EQ(record.output_transfer_seconds, 6.0);
  EXPECT_DOUBLE_EQ(record.run_end_time - record.run_start_time, 60.0);
  EXPECT_NEAR(record.overhead_seconds(), 300.0, 1e-9);
  EXPECT_DOUBLE_EQ(record.total_seconds(), 375.0);
}

TEST(GridConstant, SlotContentionQueuesJobs) {
  // 2 slots, 3 jobs of 100 s, zero overhead: last job completes at 200.
  sim::Simulator sim;
  Grid grid(sim, GridConfig::constant(0.0, /*slots=*/2));
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    grid.submit(job("j", 100.0),
                [&](const JobRecord& r) { completions.push_back(r.completion_time); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 100.0);
  EXPECT_DOUBLE_EQ(completions[1], 100.0);
  EXPECT_DOUBLE_EQ(completions[2], 200.0);
}

TEST(GridEgee, OverheadIsLargeAndVariable) {
  // The paper reports ~10 min +/- 5 min overhead on EGEE (§5.1). Check the
  // simulated distribution lands in that regime.
  sim::Simulator sim;
  auto config = GridConfig::egee2006(123);
  config.failure_probability = 0.0;  // isolate the overhead distribution
  config.background_jobs_per_hour = 0.0;
  Grid grid(sim, config);
  RunningStats overheads;
  // Spread the submissions (a burst would serialize on the UI host and
  // measure contention rather than the per-job overhead distribution).
  for (int i = 0; i < 300; ++i) {
    sim.schedule(i * 60.0, [&grid, &overheads, i] {
      grid.submit(job("j" + std::to_string(i), 60.0),
                  [&](const JobRecord& r) { overheads.add(r.overhead_seconds()); });
    });
  }
  sim.run();
  ASSERT_EQ(overheads.count(), 300u);
  EXPECT_GT(overheads.mean(), 300.0);
  EXPECT_LT(overheads.mean(), 1500.0);
  EXPECT_GT(overheads.stddev(), 100.0);  // "quite variable"
}

TEST(GridEgee, FailuresAreRetriedTransparently) {
  sim::Simulator sim;
  auto config = GridConfig::egee2006(7);
  config.failure_probability = 0.3;
  config.max_attempts = 10;
  config.background_jobs_per_hour = 0.0;
  Grid grid(sim, config);
  int done = 0;
  int multi_attempt = 0;
  for (int i = 0; i < 100; ++i) {
    grid.submit(job("j" + std::to_string(i), 30.0), [&](const JobRecord& r) {
      if (r.state == JobState::kDone) ++done;
      if (r.attempts > 1) ++multi_attempt;
    });
  }
  sim.run();
  EXPECT_EQ(done, 100);            // all eventually succeed
  EXPECT_GT(multi_attempt, 10);    // ~30% needed resubmission
  EXPECT_GT(grid.stats().failed_attempts, 10u);
}

TEST(GridEgee, ExhaustedRetriesReportFailure) {
  sim::Simulator sim;
  auto config = GridConfig::egee2006(7);
  config.failure_probability = 1.0;  // every attempt dies
  config.max_attempts = 3;
  config.background_jobs_per_hour = 0.0;
  Grid grid(sim, config);
  JobRecord record;
  grid.submit(job("doomed", 30.0), [&](const JobRecord& r) { record = r; });
  sim.run_until(1e7);
  EXPECT_EQ(record.state, JobState::kFailed);
  EXPECT_EQ(record.attempts, 3);
  EXPECT_EQ(grid.stats().failed, 1u);
}

TEST(GridEgee, DeterministicUnderSameSeed) {
  const auto run_once = [] {
    sim::Simulator sim;
    Grid grid(sim, GridConfig::egee2006(99));
    std::vector<double> completions;
    for (int i = 0; i < 50; ++i) {
      grid.submit(job("j" + std::to_string(i), 45.0),
                  [&](const JobRecord& r) { completions.push_back(r.completion_time); });
    }
    // Drive only until the foreground jobs finished (background load keeps
    // generating events).
    while (completions.size() < 50 && sim.step()) {
    }
    return completions;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(GridEgee, BrokerSpreadsLoadAcrossSites) {
  sim::Simulator sim;
  auto config = GridConfig::egee2006(5);
  config.background_jobs_per_hour = 0.0;
  Grid grid(sim, config);
  std::set<std::string> sites;
  int remaining = 200;
  for (int i = 0; i < 200; ++i) {
    grid.submit(job("j", 600.0), [&](const JobRecord& r) {
      sites.insert(r.computing_element);
      --remaining;
    });
  }
  while (remaining > 0 && sim.step()) {
  }
  EXPECT_GT(sites.size(), 5u);
}

TEST(GridEgee, BackgroundLoadSlowsForegroundJobs) {
  const auto makespan_with_background = [](double jobs_per_hour) {
    sim::Simulator sim;
    auto config = GridConfig::egee2006(11);
    config.background_jobs_per_hour = jobs_per_hour;
    // Shrink the grid so contention actually bites.
    config.computing_elements.resize(2);
    for (auto& ce : config.computing_elements) ce.worker_slots = 4;
    config.failure_probability = 0.0;
    Grid grid(sim, config);
    double last = 0.0;
    int remaining = 60;
    for (int i = 0; i < 60; ++i) {
      grid.submit(JobRequest{"j", 1800.0, 0.0, 0.0}, [&](const JobRecord& r) {
        last = std::max(last, r.completion_time);
        --remaining;
      });
    }
    while (remaining > 0 && sim.step()) {
    }
    return last;
  };
  EXPECT_GT(makespan_with_background(400.0), makespan_with_background(0.0));
}

}  // namespace
}  // namespace moteur::grid
