
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registration/algorithms.cpp" "src/registration/CMakeFiles/moteur_registration.dir/algorithms.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/algorithms.cpp.o.d"
  "/root/repo/src/registration/bronze.cpp" "src/registration/CMakeFiles/moteur_registration.dir/bronze.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/bronze.cpp.o.d"
  "/root/repo/src/registration/crest.cpp" "src/registration/CMakeFiles/moteur_registration.dir/crest.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/crest.cpp.o.d"
  "/root/repo/src/registration/geometry.cpp" "src/registration/CMakeFiles/moteur_registration.dir/geometry.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/geometry.cpp.o.d"
  "/root/repo/src/registration/image3d.cpp" "src/registration/CMakeFiles/moteur_registration.dir/image3d.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/image3d.cpp.o.d"
  "/root/repo/src/registration/image_io.cpp" "src/registration/CMakeFiles/moteur_registration.dir/image_io.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/image_io.cpp.o.d"
  "/root/repo/src/registration/phantom.cpp" "src/registration/CMakeFiles/moteur_registration.dir/phantom.cpp.o" "gcc" "src/registration/CMakeFiles/moteur_registration.dir/phantom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/moteur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
