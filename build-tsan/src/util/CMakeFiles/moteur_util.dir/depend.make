# Empty dependencies file for moteur_util.
# This may be replaced when dependencies are built.
