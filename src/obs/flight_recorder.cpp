#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace moteur::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  MOTEUR_REQUIRE(capacity_ > 0, Error, "flight recorder capacity must be positive");
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const RunEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++seen_;
}

std::vector<RunEvent> FlightRecorder::window() const {
  std::vector<RunEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ points at the oldest retained event once the ring wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::string FlightRecorder::dump_json(const std::string& run_id, const std::string& state,
                                      const std::string& error) const {
  std::ostringstream out;
  out << "{\n  \"run\": \"" << json_escape(run_id) << "\",\n  \"state\": \""
      << json_escape(state) << "\",\n  \"error\": \"" << json_escape(error)
      << "\",\n  \"capacity\": " << capacity_ << ",\n  \"events_seen\": " << seen_
      << ",\n  \"events\": [";
  bool first = true;
  for (const RunEvent& event : window()) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"kind\":\"" << to_string(event.kind)
        << "\",\"time\":" << json_number(event.time) << ",\"run_id\":\""
        << json_escape(event.run_id) << "\"";
    if (!event.processor.empty()) {
      out << ",\"processor\":\"" << json_escape(event.processor) << "\"";
    }
    if (event.invocation != 0) out << ",\"invocation\":" << event.invocation;
    if (event.attempt != 0) out << ",\"attempt\":" << event.attempt;
    if (event.tuples != 0) out << ",\"tuples\":" << event.tuples;
    if (!event.status.empty()) out << ",\"status\":\"" << json_escape(event.status) << "\"";
    if (!event.error.empty()) out << ",\"error\":\"" << json_escape(event.error) << "\"";
    if (!event.computing_element.empty()) {
      out << ",\"ce\":\"" << json_escape(event.computing_element) << "\"";
    }
    if (!event.logical_file.empty()) {
      out << ",\"file\":\"" << json_escape(event.logical_file) << "\"";
    }
    if (event.count != 0) out << ",\"count\":" << event.count;
    if (event.kind == RunEvent::Kind::kAttemptEnded) {
      out << ",\"ok\":" << (event.ok ? "true" : "false")
          << ",\"submit_time\":" << json_number(event.submit_time)
          << ",\"start_time\":" << json_number(event.start_time)
          << ",\"end_time\":" << json_number(event.end_time);
      if (event.stage_in_seconds > 0.0) {
        out << ",\"stage_in_seconds\":" << json_number(event.stage_in_seconds);
      }
      if (event.superseded) out << ",\"superseded\":true";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace moteur::obs
