file(REMOVE_RECURSE
  "libmoteur_registration.a"
)
