file(REMOVE_RECURSE
  "CMakeFiles/optimization_loop.dir/optimization_loop.cpp.o"
  "CMakeFiles/optimization_loop.dir/optimization_loop.cpp.o.d"
  "optimization_loop"
  "optimization_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
